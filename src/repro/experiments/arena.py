"""The congestion-control arena: every registered controller, same maze.

ROADMAP item 3 / ISSUE 6 tentpole: with :mod:`repro.cc` in place,
every controller — the paper's DCQCN, the DCTCP and QCN baselines,
the Timely-like RTT-gradient controller and the FNCC-style
fast-notification variant — can run under *identical* topology,
traffic and seed conditions.  The arena stages a tournament:

* **incast** — 5:1 greedy incast on a single switch, the paper's
  bread-and-butter congestion pattern (§6.1);
* **victim** — greedy incast into one rack of the 3-tier Clos with a
  long-haul flow crossing the congested pod (Figure 4's victim);
* **multibottleneck** — the Figure 20 parking lot, where flow f2
  crosses two bottlenecks and a biased protocol starves it.

Every scenario also carries two *message probes* running the same
controller as the greedy flows:

* ``fct_probe`` — a closed-loop stream of fixed-size transfers
  launched into the standing congestion; every transfer's completion
  time is recorded in the run's ``FlowStats`` table, giving a real
  per-flow FCT population (not a proxy) to take percentiles over;
* ``recovery_probe`` — a single transfer whose sender starts
  throttled to a fraction of line rate (when the controller supports
  rate seeding; windowed controllers start in their native slow
  start).  Its completion time measures how fast the controller
  climbs back — the recovery-time proxy.

Each (controller, scenario) cell is scored on Jain fairness across
the greedy flows, the probe-stream FCT and its slowdown tail
(p50/p99 of FCT over ideal-FCT), the recovery FCT, PAUSE frames and
drops, with the invariant guard armed (``REPRO_INVARIANTS`` selects
report / strict).  The league table ranks controllers per metric per
scenario and sorts by mean rank.  Scores are *simulation* outcomes
under this repo's models — a small-league benchmark harness, not a
verdict on the protocols.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro import units
from repro.analysis.stats import jain_fairness
from repro.invariants import INVARIANTS_ENV
from repro.runner import FlowSpec, Scenario, format_table, run_sweep, scale
from repro.runner.results import SweepResult

#: every controller the tournament covers (the full registry minus
#: ``"none"``, which has no control law to score)
ARENA_CONTROLLERS: Tuple[str, ...] = ("dcqcn", "dctcp", "qcn", "timely", "fncc")

#: the three mazes
ARENA_SCENARIOS: Tuple[str, ...] = ("incast", "victim", "multibottleneck")

#: probe transfer size — big enough to span many RTTs of the 40 Gbps
#: fabric, small enough to finish inside the smoke-scale horizon
PROBE_BYTES = 200 * 1000

#: recovery-probe transfer size — smaller, so a slow climb from the
#: throttled seed still completes inside the smoke-scale horizon
RECOVERY_BYTES = 50 * 1000

#: throttled seed rate of the recovery probe (fraction of line rate)
RECOVERY_SEED_FRACTION = 0.1

#: fct_probe message budget no horizon reaches: stream until end of run
PROBE_STREAM = 1 << 20

#: store-and-forward switch hops on each maze's probe path, for the
#: ideal-FCT model behind the slowdown columns
ARENA_HOPS = {"incast": 1, "victim": 5, "multibottleneck": 2}

LEAGUE_HEADERS = [
    "cc",
    "Jain",
    "fct ms",
    "slow p50",
    "slow p99",
    "recovery ms",
    "pause",
    "drops",
    "inv",
]


def _supports_seed_rate(cc: str) -> bool:
    """Whether ``cc`` accepts ``initial_rate_bps`` (rate seeding)."""
    from repro.cc import CcContext, create_cc
    from repro.core.params import DCQCNParams
    from repro.sim.engine import EventScheduler

    ctx = CcContext(
        engine=EventScheduler(),
        line_rate_bps=units.gbps(40),
        params=DCQCNParams.deployed(),
    )
    controller = create_cc(cc, ctx)
    return controller is not None and controller.supports_seed_rate


def _horizon() -> Tuple[int, int]:
    """(warmup_ns, duration_ns) under the current scale policy."""
    warmup = scale.pick(units.ms(2), units.ms(4), units.us(500))
    duration = scale.pick(units.ms(6), units.ms(20), units.ms(2))
    return warmup, duration


def _probes(
    cc: str,
    fct_src: str,
    recovery_src: str,
    dst: str,
    warmup_ns: int,
    duration_ns: int,
) -> Tuple[FlowSpec, ...]:
    """The two message probes every arena scenario carries."""
    recovery_kwargs: Dict[str, Any] = {}
    if _supports_seed_rate(cc):
        recovery_kwargs["initial_rate_bps"] = (
            RECOVERY_SEED_FRACTION * units.gbps(40)
        )
    return (
        FlowSpec(
            name="fct_probe",
            src=fct_src,
            dst=dst,
            cc=cc,
            greedy=False,
            message_bytes=PROBE_BYTES,
            message_start_ns=warmup_ns,
            message_count=PROBE_STREAM,
        ),
        FlowSpec(
            name="recovery_probe",
            src=recovery_src,
            dst=dst,
            cc=cc,
            greedy=False,
            message_bytes=RECOVERY_BYTES,
            message_start_ns=warmup_ns + duration_ns // 4,
            start_ns=warmup_ns + duration_ns // 4,
            **recovery_kwargs,
        ),
    )


def arena_scenario(scenario_id: str, cc: str) -> Scenario:
    """Build one maze for one controller (same seed ⇒ same conditions)."""
    warmup_ns, duration_ns = _horizon()
    invariants = None
    mode = os.environ.get(INVARIANTS_ENV)
    if mode is not None:
        from repro.invariants import InvariantConfig

        invariants = InvariantConfig(mode=mode)

    if scenario_id == "incast":
        greedy = tuple(
            FlowSpec(name=f"s{i}", src=str(i), dst="7", cc=cc)
            for i in range(5)
        )
        probes = _probes(cc, "5", "6", "7", warmup_ns, duration_ns)
        return Scenario(
            topology="single_switch",
            topology_kwargs={"n_hosts": 8},
            flows=greedy + probes,
            warmup_ns=warmup_ns,
            duration_ns=duration_ns,
            label=f"arena/incast/{cc}",
            invariants=invariants,
        )

    if scenario_id == "victim":
        greedy = tuple(
            FlowSpec(name=f"s{i}", src=src, dst="3:0", cc=cc)
            for i, src in enumerate(("1:0", "1:1", "2:0", "2:1"))
        ) + (FlowSpec(name="victim", src="0:0", dst="3:1", cc=cc),)
        probes = _probes(cc, "0:1", "0:2", "3:2", warmup_ns, duration_ns)
        return Scenario(
            topology="three_tier_clos",
            topology_kwargs={"hosts_per_tor": 3},
            flows=greedy + probes,
            warmup_ns=warmup_ns,
            duration_ns=duration_ns,
            label=f"arena/victim/{cc}",
            invariants=invariants,
        )

    if scenario_id == "multibottleneck":
        greedy = (
            FlowSpec(name="f1", src="H1", dst="R1", cc=cc),
            FlowSpec(name="f2", src="H2", dst="R2", cc=cc),
            FlowSpec(name="f3", src="H3", dst="R2", cc=cc),
        )
        probes = _probes(cc, "H1", "H2", "R1", warmup_ns, duration_ns)
        return Scenario(
            topology="parking_lot",
            flows=greedy + probes,
            warmup_ns=warmup_ns,
            duration_ns=duration_ns,
            label=f"arena/multibottleneck/{cc}",
            invariants=invariants,
        )

    raise ValueError(
        f"unknown arena scenario {scenario_id!r}; "
        f"choose from {ARENA_SCENARIOS}"
    )


@dataclass
class ArenaScore:
    """One (controller, scenario) cell, aggregated across seeds."""

    cc: str
    scenario: str
    fairness: float
    fct_ns: float  # inf when no probe transfer completed
    slow_p50: float  # slowdown percentiles over the fct_probe stream
    slow_p99: float
    recovery_ns: float  # inf when the probe missed the horizon
    pause_frames: float
    drops: float
    violations: float
    failures: int = 0

    @staticmethod
    def _ms(value_ns: float) -> str:
        return "—" if value_ns == float("inf") else f"{value_ns / 1e6:.3f}"

    @staticmethod
    def _x(value: float) -> str:
        return "—" if value == float("inf") else f"{value:.2f}"

    def row(self) -> List[str]:
        if self.failures:
            return [self.cc, "FAILED"] + ["—"] * (len(LEAGUE_HEADERS) - 2)
        return [
            self.cc,
            f"{self.fairness:.3f}",
            self._ms(self.fct_ns),
            self._x(self.slow_p50),
            self._x(self.slow_p99),
            self._ms(self.recovery_ns),
            f"{self.pause_frames:.0f}",
            f"{self.drops:.0f}",
            f"{self.violations:.0f}",
        ]


@dataclass
class ArenaResult:
    """The full tournament: scores per scenario plus the standings."""

    scores: Dict[Tuple[str, str], ArenaScore] = field(default_factory=dict)
    controllers: Tuple[str, ...] = ARENA_CONTROLLERS
    scenarios: Tuple[str, ...] = ARENA_SCENARIOS

    def score(self, scenario: str, cc: str) -> ArenaScore:
        return self.scores[(scenario, cc)]

    def total_violations(self) -> float:
        return sum(score.violations for score in self.scores.values())

    def total_failures(self) -> int:
        return sum(score.failures for score in self.scores.values())

    # --- ranking ---------------------------------------------------------

    def _ranks(self, scenario: str) -> Dict[str, List[float]]:
        """Per-controller ranks (1 = best) on each scored metric."""

        def rank_by(values: Dict[str, float], reverse: bool) -> Dict[str, float]:
            ordered = sorted(
                values.items(), key=lambda kv: kv[1], reverse=reverse
            )
            ranks: Dict[str, float] = {}
            for position, (cc, value) in enumerate(ordered):
                # ties share the better rank
                if position and value == ordered[position - 1][1]:
                    ranks[cc] = ranks[ordered[position - 1][0]]
                else:
                    ranks[cc] = float(position + 1)
            return ranks

        cells = {cc: self.score(scenario, cc) for cc in self.controllers}
        metric_ranks = (
            rank_by({c: s.fairness for c, s in cells.items()}, reverse=True),
            rank_by({c: s.fct_ns for c, s in cells.items()}, reverse=False),
            rank_by({c: s.slow_p99 for c, s in cells.items()}, reverse=False),
            rank_by({c: s.recovery_ns for c, s in cells.items()}, reverse=False),
            rank_by({c: s.pause_frames for c, s in cells.items()}, reverse=False),
        )
        return {
            cc: [ranks[cc] for ranks in metric_ranks]
            for cc in self.controllers
        }

    def standings(self) -> List[Tuple[str, float]]:
        """(controller, mean rank) over every scenario × metric, best first."""
        totals = {cc: [] for cc in self.controllers}
        for scenario in self.scenarios:
            for cc, ranks in self._ranks(scenario).items():
                totals[cc].extend(ranks)
        table = [
            (cc, sum(ranks) / len(ranks)) for cc, ranks in totals.items()
        ]
        return sorted(table, key=lambda kv: kv[1])

    # --- rendering -------------------------------------------------------

    def table(self) -> str:
        sections = []
        for scenario in self.scenarios:
            rows = [self.score(scenario, cc).row() for cc in self.controllers]
            sections.append(
                f"-- {scenario} --\n" + format_table(LEAGUE_HEADERS, rows)
            )
        standing_rows = [
            [str(position + 1), cc, f"{mean_rank:.2f}"]
            for position, (cc, mean_rank) in enumerate(self.standings())
        ]
        sections.append(
            "-- league standings (mean rank over "
            f"{len(self.scenarios)} scenarios × 5 metrics) --\n"
            + format_table(["#", "cc", "mean rank"], standing_rows)
        )
        mode = os.environ.get(INVARIANTS_ENV, "report")
        sections.append(
            f"invariants[{mode}]: {self.total_violations():.0f} violations, "
            f"{self.total_failures()} failed cells"
        )
        return "\n\n".join(sections)


def _greedy_names(scenario: Scenario) -> List[str]:
    return [flow.name for flow in scenario.flows if flow.greedy]


def _aggregate(
    cc: str, scenario_id: str, scenario: Scenario, point
) -> ArenaScore:
    """Fold one sweep point's runs into a score (means across seeds)."""

    from repro.analysis import fct as fct_mod
    from repro.analysis.stats import percentile

    def mean(values: Sequence[float]) -> float:
        return sum(values) / len(values) if values else float("inf")

    def probe_records(run, name: str):
        return [r for r in run.flow_stats_records() if r.flow == name]

    def probe_ns(run, name: str) -> float:
        # first completed transfer of the probe, from the FlowStats
        # table; the legacy counter is the REPRO_FLOWSTATS=off fallback
        for record in probe_records(run, name):
            if record.fct_ns is not None:
                return float(record.fct_ns)
        value = run.counters.get(f"fct_ns.{name}", -1.0)
        return float("inf") if value < 0 else value

    greedy = _greedy_names(scenario)
    runs = point.runs
    if not runs:
        return ArenaScore(
            cc=cc,
            scenario=scenario_id,
            fairness=0.0,
            fct_ns=float("inf"),
            slow_p50=float("inf"),
            slow_p99=float("inf"),
            recovery_ns=float("inf"),
            pause_frames=float("inf"),
            drops=float("inf"),
            violations=float("inf"),
            failures=len(point.failures),
        )
    rtt = fct_mod.base_rtt_ns(hops=ARENA_HOPS[scenario_id])
    stream = [r for run in runs for r in probe_records(run, "fct_probe")]
    slow = fct_mod.slowdowns(stream, rtt)
    return ArenaScore(
        cc=cc,
        scenario=scenario_id,
        fairness=mean(
            [
                jain_fairness([run.flows_bps[name] for name in greedy])
                for run in runs
            ]
        ),
        fct_ns=mean([probe_ns(run, "fct_probe") for run in runs]),
        slow_p50=percentile(slow, 50) if slow else float("inf"),
        slow_p99=percentile(slow, 99) if slow else float("inf"),
        recovery_ns=mean([probe_ns(run, "recovery_probe") for run in runs]),
        pause_frames=mean([run.counters.get("pause_frames", 0.0) for run in runs]),
        drops=mean([run.counters.get("drops", 0.0) for run in runs]),
        violations=mean(
            [
                float(run.invariant_report.get("violation_count", 0))
                for run in runs
            ]
        ),
        failures=len(point.failures),
    )


def run_arena(
    controllers: Sequence[str] = ARENA_CONTROLLERS,
    scenarios: Sequence[str] = ARENA_SCENARIOS,
    seeds: Optional[Sequence[int]] = None,
) -> ArenaResult:
    """Run the full tournament (fanned out as one sweep)."""
    if seeds is None:
        seeds = scale.seeds_for(scale.pick(2, 4, 1), base=6000)
    built = {
        (scenario_id, cc): arena_scenario(scenario_id, cc)
        for scenario_id in scenarios
        for cc in controllers
    }
    sweep: SweepResult = run_sweep("arena", built, seeds)
    result = ArenaResult(
        controllers=tuple(controllers), scenarios=tuple(scenarios)
    )
    for point in sweep.points:
        scenario_id, cc = point.value
        result.scores[(scenario_id, cc)] = _aggregate(
            cc, scenario_id, built[(scenario_id, cc)], point
        )
    return result
