"""Chaos experiment: resilience vs fault intensity (see DESIGN.md §9).

The paper's operational sections (§7 and the deployment discussion)
are about surviving the failure modes PFC makes possible: slow
receivers asserting PAUSE, flapping optics, lost or late CNPs.  This
experiment runs the dumbbell feeder/victim scenario of
:mod:`repro.experiments.pfc_pathologies` under an escalating
:class:`~repro.faults.FaultPlan` — a PAUSE storm plus a trunk link
flap whose durations grow with the intensity knob — and reports the
resilience metrics the fault subsystem folds into every run: goodput
under faults, worst victim loss, and time-to-recover.  The deadlock
watchdog is armed at every point and must stay silent (storms and
flaps stall flows; they must never read as cyclic buffer waits).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro import units
from repro.analysis.stats import percentile
from repro.experiments import common
from repro.runner import FlowSpec, Scenario, run_sweep
from repro.runner import scale

CHAOS_HEADERS = [
    "intensity",
    "victim Gbps",
    "goodput frac",
    "victim loss frac",
    "recover us",
    "watchdog cycles",
]


@dataclass
class ChaosPoint:
    """Resilience metrics at one fault intensity."""

    intensity: float
    victim_gbps: float
    goodput_fraction: float
    victim_loss_fraction: float
    max_recovery_us: float
    watchdog_cycles: int

    def row(self) -> List[str]:
        return [
            f"{self.intensity:.2f}",
            f"{self.victim_gbps:.2f}",
            f"{self.goodput_fraction:.2f}",
            f"{self.victim_loss_fraction:.2f}",
            f"{self.max_recovery_us:.0f}",
            str(self.watchdog_cycles),
        ]


@dataclass
class ChaosResult:
    """One :class:`ChaosPoint` per swept intensity."""

    cc: str
    repetitions: int
    duration_ms: float
    points: List[ChaosPoint] = field(default_factory=list)

    def table(self) -> str:
        return common.format_table(CHAOS_HEADERS, [p.row() for p in self.points])


def chaos_scenario(
    intensity: float,
    cc: str = "dcqcn",
    duration_ns: Optional[int] = None,
    warmup_ns: Optional[int] = None,
) -> Scenario:
    """Feeder/victim dumbbell under a storm + flap plan.

    ``intensity`` in [0, 1] scales both fault durations: at 0 the plan
    is empty (clean baseline); at 1 the PAUSE storm covers ~40% of the
    measurement window and the trunk flap ~10%.
    """
    from repro.faults import FaultPlan, LinkFlap, PauseStorm, WatchdogConfig

    if not 0.0 <= intensity <= 1.0:
        raise ValueError(f"intensity must be in [0, 1], got {intensity}")
    duration_ns = duration_ns or scale.pick(units.ms(10), units.ms(30), units.ms(2))
    if warmup_ns is None:
        warmup_ns = (
            scale.pick(units.ms(15), units.ms(30), units.ms(1))
            if cc == "dcqcn"
            else 0
        )
    injectors = []
    if intensity > 0.0:
        storm_ns = int(duration_ns * 0.4 * intensity)
        flap_ns = int(duration_ns * 0.1 * intensity)
        if storm_ns > 0:
            injectors.append(PauseStorm(
                host="R1",
                start_ns=warmup_ns + duration_ns // 8,
                duration_ns=storm_ns,
            ))
        if flap_ns > 0:
            # the flap lands in the second half, after the storm clears,
            # so each fault's recovery is observable on its own
            injectors.append(LinkFlap(
                a="SL",
                b="SR",
                start_ns=warmup_ns + (duration_ns * 3) // 4,
                down_ns=flap_ns,
            ))
    faults = FaultPlan(
        injectors=tuple(injectors), watchdog=WatchdogConfig()
    ) if injectors else None
    return Scenario(
        topology="dumbbell",
        topology_kwargs={"n_left": 2, "n_right": 2},
        flows=(
            FlowSpec(name="feeder", src="L1", dst="R1", cc=cc),
            FlowSpec(name="victim", src="L2", dst="R2", cc=cc),
        ),
        warmup_ns=warmup_ns,
        duration_ns=duration_ns,
        label=f"chaos/{cc}/{intensity:.2f}",
        faults=faults,
    )


def chaos_fabric_scenario(
    intensity: float = 1.0,
    cc: str = "dcqcn",
    k: int = 4,
    duration_ns: Optional[int] = None,
    warmup_ns: Optional[int] = None,
) -> Scenario:
    """The fabric-scale chaos maze: incast under storm + boundary faults.

    The :func:`~repro.experiments.fabric_scale.fabric_incast_scenario`
    traffic on a ``k``-ary fat-tree, overlaid with the dumbbell chaos
    plan's fault vocabulary aimed at the topology's weak points: a
    PAUSE storm at the incast destination NIC (the paper's
    storm-at-the-root pathology), a flap of a pod↔core trunk and an
    error burst on another — both *shard-boundary* cables at every
    shard count, so the sharded determinism tests can drive the full
    fault vocabulary through the sync protocol.  ``intensity`` scales
    the fault durations exactly like :func:`chaos_scenario`.
    """
    import dataclasses

    from repro.experiments.fabric_scale import fabric_incast_scenario
    from repro.faults import ErrorBurst, FaultPlan, LinkFlap, PauseStorm

    if not 0.0 <= intensity <= 1.0:
        raise ValueError(f"intensity must be in [0, 1], got {intensity}")
    duration_ns = duration_ns or scale.pick(
        units.ms(1), units.ms(4), units.us(300)
    )
    if warmup_ns is None:
        warmup_ns = units.us(50)
    injectors = []
    if intensity > 0.0:
        storm_ns = int(duration_ns * 0.4 * intensity)
        flap_ns = int(duration_ns * 0.1 * intensity)
        burst_ns = int(duration_ns * 0.3 * intensity)
        if storm_ns > 0:
            injectors.append(PauseStorm(
                host="p0e0h0",
                start_ns=warmup_ns + duration_ns // 8,
                duration_ns=storm_ns,
            ))
        if flap_ns > 0:
            injectors.append(LinkFlap(
                a="p1a0",
                b="c0",
                start_ns=warmup_ns + (duration_ns * 3) // 4,
                down_ns=flap_ns,
            ))
        if burst_ns > 0:
            injectors.append(ErrorBurst(
                a=f"p{k - 1}a1",
                b=f"c{k - 1}",
                rate=0.02,
                start_ns=warmup_ns + duration_ns // 3,
                duration_ns=burst_ns,
            ))
    # no WatchdogConfig here: the deadlock watchdog walks a *global*
    # pause wait-for graph that no single shard can see, so it is never
    # armed on sharded runs (repro.faults.install_plan) — arming it
    # would break the serial==sharded bit-identity this scenario exists
    # to exercise
    faults = FaultPlan(
        injectors=tuple(injectors),
        recovery_sample_ns=duration_ns // 12,
    ) if injectors else None
    base = fabric_incast_scenario(
        k=k,
        duration_ns=duration_ns,
        label=f"chaos-fabric/{cc}/k{k}/{intensity:.2f}",
    )
    return dataclasses.replace(base, warmup_ns=warmup_ns, faults=faults)


def run_chaos(
    intensities: Sequence[float] = (0.0, 0.25, 0.5, 1.0),
    cc: str = "dcqcn",
    repetitions: Optional[int] = None,
    duration_ns: Optional[int] = None,
    warmup_ns: Optional[int] = None,
) -> ChaosResult:
    """Sweep fault intensity and report the resilience metrics."""
    repetitions = repetitions or scale.pick(3, 6, 2)
    scenarios = {
        intensity: chaos_scenario(
            intensity, cc=cc, duration_ns=duration_ns, warmup_ns=warmup_ns
        )
        for intensity in intensities
    }
    seeds = {
        intensity: scale.seeds_for(repetitions, base=9000)
        for intensity in intensities
    }
    sweep = run_sweep("intensity", scenarios, seeds)
    if sweep.total_failures():
        warnings.warn(
            f"{sweep.total_failures()} of the chaos repetitions failed "
            "(timeout/crash); point summaries cover the survivors"
        )
    sample = next(iter(scenarios.values()))
    result = ChaosResult(
        cc=cc, repetitions=repetitions, duration_ms=sample.duration_ns / 1e6
    )
    for point in sweep.points:
        gauges: Dict[str, float] = {}
        cycles = 0
        for run in point.runs:
            for name in (
                "fault.goodput_fraction",
                "fault.victim_loss_fraction",
                "fault.max_recovery_ns",
            ):
                value = run.metrics.get("gauges", {}).get(name)
                if value is not None:
                    gauges.setdefault(name, 0.0)
                    gauges[name] += value / len(point.runs)
            cycles += int(run.metrics.get("counters", {}).get(
                "watchdog.cycles", 0
            ))
        samples = point.flow_samples("victim")
        result.points.append(ChaosPoint(
            intensity=point.value,
            victim_gbps=percentile(samples, 50) / 1e9 if samples else float("nan"),
            goodput_fraction=gauges.get("fault.goodput_fraction", 1.0),
            victim_loss_fraction=gauges.get("fault.victim_loss_fraction", 0.0),
            max_recovery_us=gauges.get("fault.max_recovery_ns", 0.0) / 1e3,
            watchdog_cycles=cycles,
        ))
    return result
