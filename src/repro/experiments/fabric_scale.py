"""Fabric-scale experiments: DCQCN on parameterized fat-tree fabrics.

The paper's testbed (Figure 2) is ten switches; its deployment claims
are about *large-scale* fabrics.  These scenarios put the protocol on
:mod:`repro.fabric` topologies — a k=4 fat-tree for smoke coverage, a
k=8 (128 hosts) for the CI strict-invariant gate, a k=16 (1024 hosts)
incast for the thousand-host headline, and a fabric-wide benchmark
with heavy-tailed storage-cluster traffic — all as declarative
:class:`~repro.runner.scenario.Scenario` objects, so every run is
cached, parallel and resumable like the rest of the suite.

Scoring follows :mod:`repro.analysis.fct`: probe transfers land in
``flow_stats`` and are reported as slowdowns over the ideal FCT of an
idle cross-pod path.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro import units
from repro.analysis import fct
from repro.runner import scale
from repro.runner.results import format_table
from repro.runner.scenario import FlowSpec, Scenario, run_scenario

#: cross-pod fat-tree path: edge, agg, core, agg, edge — five
#: store-and-forward hops (cf. ``BENCHMARK_HOPS = 3`` on the Clos)
FABRIC_HOPS = 5

#: probe sizes, matching :mod:`repro.experiments.fct_grid`
MICE_BYTES = 20_000
ELEPHANT_BYTES = 1_000_000

#: a message budget no horizon reaches: "stream until the run ends"
STREAM = 1 << 20


def _incast_flows(
    spec_k: int,
    degree: int,
    hosts_per_edge: int,
    message_start_ns: int = 0,
) -> List[FlowSpec]:
    """``degree`` greedy DCQCN flows converging on host ``0:0:0``.

    Senders are spread round-robin over the *other* pods first, then
    over edges and host slots, so the incast exercises core links
    before it doubles up on any single sender.  The last host slot of
    every edge switch is reserved for the probe flows — a probe
    sharing its NIC with a greedy incast sender would measure the
    sender's backlog, not the fabric's.
    """
    pods = spec_k
    edges_per_pod = spec_k // 2
    sender_slots = max(1, hosts_per_edge - 1)
    flows = []
    for i in range(degree):
        pod = 1 + i % (pods - 1)
        edge = (i // (pods - 1)) % edges_per_pod
        slot = (i // ((pods - 1) * edges_per_pod)) % sender_slots
        flows.append(
            FlowSpec(
                name=f"incast{i}",
                src=f"{pod}:{edge}:{slot}",
                dst="0:0:0",
                cc="dcqcn",
                start_ns=message_start_ns,
            )
        )
    return flows


def _probe_flows(spec_k: int, start_ns: int) -> List[FlowSpec]:
    """A mice and an elephant stream from the last pod into pod 0.

    Probe sources sit on the last host slot (never an incast sender);
    the mice lands next to the incast destination — under the same
    edge switch but on its own downlink — so its slowdown measures the
    congestion the incast spreads through the fabric, the
    congestion-spreading question PFC raises and DCQCN answers.
    """
    last_pod = spec_k - 1
    last_slot = spec_k // 2 - 1
    return [
        FlowSpec(
            name="mice",
            src=f"{last_pod}:0:{last_slot}",
            dst="0:0:1",
            cc="dcqcn",
            greedy=False,
            message_bytes=MICE_BYTES,
            message_start_ns=start_ns,
            message_count=STREAM,
        ),
        FlowSpec(
            name="elephant",
            src=f"{last_pod}:1:{last_slot}",
            dst="0:1:0",
            cc="dcqcn",
            greedy=False,
            message_bytes=ELEPHANT_BYTES,
            message_start_ns=start_ns,
            message_count=STREAM,
        ),
    ]


def fabric_incast_scenario(
    k: int = 4,
    degree: Optional[int] = None,
    duration_ns: Optional[int] = None,
    label: Optional[str] = None,
) -> Scenario:
    """Incast plus probes on a k-ary fat-tree (``k³/4`` hosts).

    ``degree`` defaults to one sender per non-destination pod per edge
    switch — enough fan-in to congest the destination edge link at any
    ``k`` without quadratic flow counts.
    """
    hosts_per_edge = k // 2
    if degree is None:
        degree = (k - 1) * (k // 2)
    max_senders = (k - 1) * (k // 2) * max(1, hosts_per_edge - 1)
    if degree > max_senders:
        raise ValueError(
            f"degree {degree} exceeds the {max_senders} sender slots "
            f"outside pod 0"
        )
    duration_ns = duration_ns or scale.pick(
        units.ms(1), units.ms(4), units.us(300)
    )
    flows = _incast_flows(k, degree, hosts_per_edge)
    flows.extend(_probe_flows(k, start_ns=units.us(20)))
    return Scenario(
        topology="fabric",
        topology_kwargs={"kind": "fat_tree", "k": k},
        flows=tuple(flows),
        duration_ns=duration_ns,
        label=label or f"fabric-k{k}-incast{degree}",
    )


def fabric_benchmark_scenario(
    k: int = 8,
    n_pairs: Optional[int] = None,
    incast_degree: Optional[int] = None,
    duration_ns: Optional[int] = None,
) -> Scenario:
    """Fabric-wide benchmark traffic: heavy-tailed streams + incast.

    ``n_pairs`` user pairs stream transfers back to back between
    uniformly drawn cross-fabric host pairs; sizes come from the
    storage-cluster distribution with every fourth pair pinned to 1 MB
    extents (the same construction as the Fig 16 Clos benchmark, so
    the mice/elephants split exists at every scale).  All draws use a
    fixed seed (2015): the scenario is deterministic and its content
    hash stable.
    """
    from repro.traffic.distributions import storage_cluster

    host_count = k * k * k // 4
    n_pairs = n_pairs or scale.pick(16, 48, 6)
    incast_degree = incast_degree or scale.pick(8, 16, 4)
    duration_ns = duration_ns or scale.pick(
        units.ms(1), units.ms(4), units.us(300)
    )
    rng = random.Random(2015)
    distribution = storage_cluster()
    flows = _incast_flows(k, incast_degree, k // 2)

    def flat(locator: str) -> int:
        pod, edge, slot = (int(part) for part in locator.split(":"))
        return (pod * (k // 2) + edge) * (k // 2) + slot

    used = {flat(flow.src) for flow in flows} | {flat("0:0:0")}
    for p in range(n_pairs):
        while True:
            src, dst = rng.sample(range(host_count), 2)
            if src not in used and dst not in used:
                used.update((src, dst))
                break
        src_loc, dst_loc = str(src), str(dst)
        flows.append(
            FlowSpec(
                name=f"user{p}",
                src=src_loc,
                dst=dst_loc,
                cc="dcqcn",
                greedy=False,
                message_bytes=(
                    ELEPHANT_BYTES if p % 4 == 3 else distribution.sample(rng)
                ),
                message_start_ns=rng.randrange(0, units.us(100)),
                message_count=STREAM,
            )
        )
    return Scenario(
        topology="fabric",
        topology_kwargs={"kind": "fat_tree", "k": k},
        flows=tuple(flows),
        duration_ns=duration_ns,
        label=f"fabric-k{k}-bench",
    )


def thousand_host_scenario(duration_ns: Optional[int] = None) -> Scenario:
    """The headline run: 32:1 incast on a k=16 fat-tree (1024 hosts).

    The horizon is deliberately short — the point is that a
    thousand-host fabric *builds, routes and simulates* inside the
    executor timeout with invariants clean, not that it converges; the
    incast and both probes still complete transfers inside it.
    """
    import dataclasses

    from repro.invariants import InvariantConfig

    scenario = fabric_incast_scenario(
        k=16,
        degree=32,
        duration_ns=duration_ns
        or scale.pick(units.us(600), units.ms(1), units.us(400)),
        label="fabric-1024",
    )
    return dataclasses.replace(
        scenario, invariants=InvariantConfig(mode="report")
    )


# --- runners ----------------------------------------------------------------


def _slowdown_rows(
    runs, hops: int = FABRIC_HOPS
) -> List[List[str]]:
    records = fct.records_from_runs(runs)
    summaries = fct.summarize_slowdowns(records, fct.base_rtt_ns(hops=hops))
    rows = []
    for bucket in fct.BUCKETS:
        summary = summaries.get(bucket)
        if summary is None:
            continue
        rows.append(
            [
                bucket,
                str(summary.count),
                f"{summary.p50:.2f}",
                f"{summary.p99:.2f}",
            ]
        )
    return rows


FABRIC_HEADERS = ["fabric", "flows", "drops", "PAUSE", "edge rx", "agg rx", "core rx"]


def run_fabric(
    ks: Optional[Sequence[int]] = None,
    repetitions: Optional[int] = None,
    jobs: Optional[int] = None,
    cache: Optional[bool] = None,
) -> str:
    """Incast-under-DCQCN across fat-tree sizes, with per-tier PAUSE
    aggregation and probe slowdowns; returns the rendered tables."""
    ks = tuple(ks) if ks is not None else scale.pick((4, 8), (4, 8), (4,))
    repetitions = repetitions or scale.pick(1, 3, 1)
    fabric_rows = []
    slowdown_blocks = []
    for k in ks:
        scenario = fabric_incast_scenario(k=k)
        runs = run_scenario(
            scenario,
            scale.seeds_for(repetitions, base=4000 + 31 * k),
            jobs=jobs,
            cache=cache,
        )
        fabric_rows.append(
            [
                f"k={k} ({k * k * k // 4} hosts)",
                str(len(scenario.flows)),
                str(int(sum(run.counters["drops"] for run in runs))),
                str(int(sum(run.counters["pause_frames"] for run in runs))),
                str(int(sum(run.counters["pause_rx.edge"] for run in runs))),
                str(int(sum(run.counters["pause_rx.agg"] for run in runs))),
                str(int(sum(run.counters["pause_rx.core"] for run in runs))),
            ]
        )
        rows = _slowdown_rows(runs)
        if rows:
            slowdown_blocks.append(
                f"-- k={k} probe slowdowns --\n"
                + format_table(["bucket", "n", "p50", "p99"], rows)
            )
    out = format_table(FABRIC_HEADERS, fabric_rows)
    if slowdown_blocks:
        out += "\n\n" + "\n\n".join(slowdown_blocks)
    return out


def run_fabric_1024(
    jobs: Optional[int] = None, cache: Optional[bool] = None
) -> str:
    """The 1024-host incast: one seed, invariants on, slowdowns out."""
    scenario = thousand_host_scenario()
    runs = run_scenario(scenario, [2015], jobs=jobs, cache=cache)
    run = runs[0]
    violations = run.invariant_report.get("violations", [])
    lines = [
        f"1024-host fat-tree (k=16), {len(scenario.flows)} flows, "
        f"{run.duration_ns / 1e6:g} ms horizon",
        f"drops={int(run.counters['drops'])} "
        f"pause_frames={int(run.counters['pause_frames'])} "
        f"pause_rx[edge/agg/core]="
        f"{int(run.counters['pause_rx.edge'])}/"
        f"{int(run.counters['pause_rx.agg'])}/"
        f"{int(run.counters['pause_rx.core'])}",
        f"invariant violations: {len(violations)}",
    ]
    rows = _slowdown_rows(runs)
    if rows:
        lines.append(format_table(["bucket", "n", "p50", "p99"], rows))
    return "\n".join(lines)
