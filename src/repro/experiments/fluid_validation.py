"""Fluid-model validation (Figure 10) and parameter validation (Figure 13).

Figure 10: the same two-sender, one-receiver, single-switch scenario
run through both the packet simulator (standing in for the firmware
implementation) and the fluid model; the paper overlays the second
sender's rate trace from each and shows they match.

Figure 13: four parameter configurations on the same staggered
two-flow microbenchmark:

  (a) strawman (QCN/DCTCP defaults)      -> persistent unfairness
  (b) 55 us timer, cut-off marking       -> fair
  (c) RED-like marking, strawman timer   -> fair on average, unstable
  (d) 55 us timer + RED marking          -> fair and stable (deployed)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro import units
from repro.core.params import DCQCNParams
from repro.experiments import common
from repro.runner import Cell, execute
from repro.runner import scale
from repro.runner.scenario import decode_value, encode_value


@dataclass
class FluidVsSimResult:
    """Figure 10: second sender's rate trace, sim vs fluid model."""

    times_s: np.ndarray
    sim_rate_bps: np.ndarray
    fluid_rate_bps: np.ndarray

    def normalized_rmse(self) -> float:
        """RMSE between the traces, normalized by the line-rate scale."""
        if len(self.sim_rate_bps) == 0:
            raise ValueError("empty traces")
        diff = self.sim_rate_bps - self.fluid_rate_bps
        return float(np.sqrt(np.mean(diff**2)) / max(self.sim_rate_bps.max(), 1.0))

    def correlation(self) -> float:
        """Pearson correlation of the two ramps."""
        if self.sim_rate_bps.std() == 0 or self.fluid_rate_bps.std() == 0:
            return 0.0
        return float(np.corrcoef(self.sim_rate_bps, self.fluid_rate_bps)[0, 1])

    def table(self, points: int = 10) -> str:
        rows = []
        step = max(1, len(self.times_s) // points)
        for index in range(0, len(self.times_s), step):
            rows.append(
                [
                    f"{self.times_s[index] * 1e3:.1f}",
                    f"{self.sim_rate_bps[index] / 1e9:.2f}",
                    f"{self.fluid_rate_bps[index] / 1e9:.2f}",
                ]
            )
        return common.format_table(["t (ms)", "sim Gbps", "fluid Gbps"], rows)


def fluid_vs_sim_cell(
    duration_ns: int,
    second_start_ns: int,
    params: Dict[str, Any],
    sample_interval_ns: int,
    seed: int,
) -> Dict[str, Any]:
    """Figure 10's packet-sim + fluid-model pair — worker entry point."""
    from repro.fluid.model import FluidParams, simulate
    from repro.sim.monitor import RateSampler
    from repro.sim.switch import SwitchConfig
    from repro.sim.topology import single_switch

    dcqcn_params = decode_value(params)
    net, _, hosts = single_switch(
        3,
        seed=seed,
        switch_config=SwitchConfig(marking=dcqcn_params),
        dcqcn_params=dcqcn_params,
    )
    receiver = hosts[2]
    first = net.add_flow(hosts[0], receiver, cc="dcqcn")
    second = net.add_flow(hosts[1], receiver, cc="dcqcn", start_ns=second_start_ns)
    first.set_greedy()
    second.set_greedy()
    sampler = RateSampler(
        net.engine, [first, second], sample_interval_ns, stop_ns=duration_ns
    )
    net.run_for(duration_ns)
    sim_times = np.asarray(sampler.times_ns) / 1e9
    sim_rates = np.asarray(sampler.series(second))

    fluid_params = FluidParams.from_dcqcn(dcqcn_params, num_flows=2)
    trace = simulate(
        fluid_params,
        duration_s=duration_ns / 1e9,
        dt_s=2e-6,
        start_times_s=np.array([0.0, second_start_ns / 1e9]),
    )
    fluid_rates = np.interp(sim_times, trace.times_s, trace.rc_bps[:, 0, 1])
    return {
        "times_s": sim_times.tolist(),
        "sim_rate_bps": sim_rates.tolist(),
        "fluid_rate_bps": fluid_rates.tolist(),
    }


def run_fluid_vs_sim(
    duration_ns: Optional[int] = None,
    second_start_ns: Optional[int] = None,
    params: Optional[DCQCNParams] = None,
    sample_interval_ns: int = units.us(500),
    seed: int = 7,
) -> FluidVsSimResult:
    """Figure 10: overlay packet-sim and fluid-model rate ramps."""
    duration_ns = duration_ns or scale.pick(
        units.ms(40), units.ms(100), units.ms(10)
    )
    second_start_ns = second_start_ns or units.ms(10)
    params = params or DCQCNParams.deployed()
    kwargs = {
        "duration_ns": duration_ns,
        "second_start_ns": second_start_ns,
        "params": encode_value(params),
        "sample_interval_ns": sample_interval_ns,
        "seed": seed,
    }
    (value,) = execute(
        [Cell("repro.experiments.fluid_validation:fluid_vs_sim_cell", kwargs)]
    )
    return FluidVsSimResult(
        times_s=np.asarray(value["times_s"]),
        sim_rate_bps=np.asarray(value["sim_rate_bps"]),
        fluid_rate_bps=np.asarray(value["fluid_rate_bps"]),
    )


#: Figure 13's four configurations.
FIG13_CONFIGS = {
    "strawman": DCQCNParams.strawman(),
    "fast_timer_cutoff": DCQCNParams(
        kmin_bytes=units.kb(40),
        kmax_bytes=units.kb(40),
        pmax=1.0,
        g=1.0 / 16.0,
        rate_increase_timer_ns=units.us(55),
        byte_counter_bytes=units.mb(10),
    ),
    "red_marking_slow_timer": DCQCNParams(
        kmin_bytes=units.kb(5),
        kmax_bytes=units.kb(200),
        pmax=0.01,
        g=1.0 / 16.0,
        rate_increase_timer_ns=units.ms(1.5),
        byte_counter_bytes=units.kb(150),
    ),
    "deployed": DCQCNParams.deployed(),
}


@dataclass
class TwoFlowFairnessResult:
    """Figure 13: steady-state behaviour of two staggered flows."""

    config: str
    mean_rate_gbps: Tuple[float, float]
    rate_gap_gbps: float
    #: std-dev of each flow's sampled rate in steady state (stability)
    rate_std_gbps: Tuple[float, float]
    times_s: np.ndarray = field(repr=False, default=None)
    rates_bps: np.ndarray = field(repr=False, default=None)  # (samples, 2)


def two_flow_cell(
    config_name: str,
    duration_ns: int,
    second_start_ns: int,
    seed: int,
    sample_interval_ns: int,
    second_initial_rate_bps: Optional[float],
) -> Dict[str, Any]:
    """One Figure 13 panel — the worker-side entry point."""
    from repro.sim.monitor import RateSampler
    from repro.sim.switch import SwitchConfig
    from repro.sim.topology import single_switch

    params = FIG13_CONFIGS[config_name]
    net, _, hosts = single_switch(
        3, seed=seed, switch_config=SwitchConfig(marking=params), dcqcn_params=params
    )
    receiver = hosts[2]
    first = net.add_flow(hosts[0], receiver, cc="dcqcn")
    second = net.add_flow(
        hosts[1],
        receiver,
        cc="dcqcn",
        start_ns=second_start_ns,
        initial_rate_bps=second_initial_rate_bps,
    )
    first.set_greedy()
    second.set_greedy()
    sampler = RateSampler(
        net.engine, [first, second], sample_interval_ns, stop_ns=duration_ns
    )
    net.run_for(duration_ns)
    rates = np.stack(
        [np.asarray(sampler.series(first)), np.asarray(sampler.series(second))],
        axis=1,
    )
    times = np.asarray(sampler.times_ns) / 1e9
    return {"times_s": times.tolist(), "rates_bps": rates.tolist()}


_TWO_FLOW_FN = "repro.experiments.fluid_validation:two_flow_cell"


def _two_flow_kwargs(
    config_name: str,
    duration_ns: Optional[int],
    second_start_ns: Optional[int],
    seed: int,
    sample_interval_ns: int,
    second_initial_rate_bps: Optional[float],
) -> Dict[str, Any]:
    if config_name not in FIG13_CONFIGS:
        raise ValueError(
            f"unknown config {config_name!r}; choose from {sorted(FIG13_CONFIGS)}"
        )
    duration_ns = duration_ns or scale.pick(
        units.ms(60), units.ms(150), units.ms(12)
    )
    second_start_ns = second_start_ns or units.ms(5)
    return {
        "config_name": config_name,
        "duration_ns": duration_ns,
        "second_start_ns": second_start_ns,
        "seed": seed,
        "sample_interval_ns": sample_interval_ns,
        "second_initial_rate_bps": second_initial_rate_bps,
    }


def _two_flow_result(value: Dict[str, Any]) -> TwoFlowFairnessResult:
    times = np.asarray(value["times_s"])
    rates = np.asarray(value["rates_bps"])
    # steady state: trailing half of the run
    tail = rates[len(rates) // 2 :]
    means = tail.mean(axis=0)
    stds = tail.std(axis=0)
    return TwoFlowFairnessResult(
        config=value["config_name"],
        mean_rate_gbps=(means[0] / 1e9, means[1] / 1e9),
        rate_gap_gbps=abs(means[0] - means[1]) / 1e9,
        rate_std_gbps=(stds[0] / 1e9, stds[1] / 1e9),
        times_s=times,
        rates_bps=rates,
    )


def run_two_flow_validation(
    config_name: str,
    duration_ns: Optional[int] = None,
    second_start_ns: Optional[int] = None,
    seed: int = 11,
    sample_interval_ns: int = units.us(500),
    second_initial_rate_bps: Optional[float] = units.gbps(5),
) -> TwoFlowFairnessResult:
    """One Figure 13 panel: two staggered greedy flows, one switch.

    The second flow is seeded at 5 Gbps (the §5.2 convergence setup):
    the testbed's unfairness is seeded by hardware noise that a
    deterministic simulator does not have, so the asymmetry the
    configs must (or must not) repair is injected explicitly.
    """
    kwargs = _two_flow_kwargs(
        config_name, duration_ns, second_start_ns, seed,
        sample_interval_ns, second_initial_rate_bps,
    )
    (value,) = execute([Cell(_TWO_FLOW_FN, kwargs)])
    value = dict(value, config_name=config_name)
    return _two_flow_result(value)


def run_all_validations(**kwargs) -> Dict[str, TwoFlowFairnessResult]:
    """All four Figure 13 panels (fanned out across workers)."""
    names = list(FIG13_CONFIGS)
    cells = [
        Cell(_TWO_FLOW_FN, _two_flow_kwargs(
            name,
            kwargs.get("duration_ns"),
            kwargs.get("second_start_ns"),
            kwargs.get("seed", 11),
            kwargs.get("sample_interval_ns", units.us(500)),
            kwargs.get("second_initial_rate_bps", units.gbps(5)),
        ))
        for name in names
    ]
    values = execute(cells)
    return {
        name: _two_flow_result(dict(value, config_name=name))
        for name, value in zip(names, values)
    }
