"""Single-switch incast microbenchmark (paper §6.1, closing claim).

"Using 20 machines connected via a single switch, we verified that
with the 55 µs timer, RED-ECN and g = 1/256, the total throughput is
always more than 39 Gbps for K:1 incast, K = 2..19.  The switch
counter shows that the queue length never exceeds 100 KB."

We reproduce the sweep: for each K, run K greedy DCQCN flows into one
receiver, then report aggregate goodput and peak queue.  Each K is an
independent executor cell, so the sweep fans out across cores.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro import units
from repro.core.params import DCQCNParams
from repro.experiments import common
from repro.runner import Cell, execute
from repro.runner import scale
from repro.runner.scenario import decode_value, encode_value


@dataclass
class IncastUtilizationResult:
    """One K:1 incast run."""

    degree: int
    total_goodput_gbps: float
    peak_queue_kb: float
    mean_queue_kb: float
    pause_frames: int

    def row(self) -> List[str]:
        return [
            str(self.degree),
            f"{self.total_goodput_gbps:.2f}",
            f"{self.peak_queue_kb:.1f}",
            f"{self.mean_queue_kb:.1f}",
            str(self.pause_frames),
        ]


INCAST_HEADERS = ["K", "total Gbps", "peak queue KB", "mean queue KB", "PAUSE"]


def incast_cell(
    degree: int,
    params: Dict[str, Any],
    warmup_ns: int,
    measure_ns: int,
    sample_interval_ns: int,
    seed: int,
) -> Dict[str, Any]:
    """One K:1 point — the worker-side entry point."""
    from repro.sim.monitor import QueueSampler
    from repro.sim.switch import SwitchConfig
    from repro.sim.topology import single_switch

    dcqcn_params = decode_value(params)
    net, switch, hosts = single_switch(
        degree + 1,
        switch_config=SwitchConfig(marking=dcqcn_params),
        seed=seed + degree,
        dcqcn_params=dcqcn_params,
    )
    receiver = hosts[-1]
    flows = []
    for sender in hosts[:degree]:
        flow = net.add_flow(sender, receiver, cc="dcqcn")
        flow.set_greedy()
        flows.append(flow)
    net.run_for(warmup_ns)
    port_index = switch.port_to(receiver.nic).index
    sampler = QueueSampler(
        net.engine,
        switch,
        port_index,
        interval_ns=sample_interval_ns,
        stop_ns=net.engine.now + measure_ns,
    )
    before = sum(flow.bytes_delivered for flow in flows)
    # PAUSE frames during the line-rate start melee are expected (the
    # paper relies on PFC there); steady state is what §6.1 claims.
    pauses_before = switch.pause_frames_sent
    net.run_for(measure_ns)
    delivered = sum(flow.bytes_delivered for flow in flows) - before
    samples = sampler.samples_bytes
    return {
        "degree": degree,
        "total_goodput_gbps": delivered * 8e9 / measure_ns / 1e9,
        "peak_queue_kb": max(samples) / 1e3 if samples else 0.0,
        "mean_queue_kb": (sum(samples) / len(samples) / 1e3) if samples else 0.0,
        "pause_frames": switch.pause_frames_sent - pauses_before,
    }


_CELL_FN = "repro.experiments.microbench:incast_cell"


def _cell_kwargs(
    degree: int,
    params: Optional[DCQCNParams],
    warmup_ns: Optional[int],
    measure_ns: Optional[int],
    sample_interval_ns: int,
    seed: int,
) -> Dict[str, Any]:
    if degree < 1:
        raise ValueError("incast degree must be at least 1")
    params = params or DCQCNParams.deployed()
    if warmup_ns is None:
        warmup_ns = scale.pick(units.ms(20), units.ms(40), units.ms(4))
    measure_ns = measure_ns or scale.pick(units.ms(10), units.ms(30), units.ms(2))
    return {
        "degree": degree,
        "params": encode_value(params),
        "warmup_ns": warmup_ns,
        "measure_ns": measure_ns,
        "sample_interval_ns": sample_interval_ns,
        "seed": seed,
    }


def run_incast_utilization(
    degree: int,
    params: Optional[DCQCNParams] = None,
    warmup_ns: Optional[int] = None,
    measure_ns: Optional[int] = None,
    sample_interval_ns: int = units.us(10),
    seed: int = 43,
) -> IncastUtilizationResult:
    """One K:1 point of the §6.1 sweep."""
    kwargs = _cell_kwargs(
        degree, params, warmup_ns, measure_ns, sample_interval_ns, seed
    )
    (value,) = execute([Cell(_CELL_FN, kwargs)])
    return IncastUtilizationResult(**value)


def run_incast_sweep(
    degrees: Sequence[int] = (2, 4, 8, 16, 19),
    params: Optional[DCQCNParams] = None,
    warmup_ns: Optional[int] = None,
    measure_ns: Optional[int] = None,
    sample_interval_ns: int = units.us(10),
    seed: int = 43,
) -> List[IncastUtilizationResult]:
    """The §6.1 K:1 sweep (fanned out across workers)."""
    cells = [
        Cell(_CELL_FN, _cell_kwargs(
            degree, params, warmup_ns, measure_ns, sample_interval_ns, seed
        ))
        for degree in degrees
    ]
    return [IncastUtilizationResult(**value) for value in execute(cells)]
