"""Queue-length comparison: DCQCN vs DCTCP (Figure 19, paper §6.3).

2:1 incast into one receiver through a single switch (the paper's
microbenchmark).  DCQCN runs
with its deployed RED profile (Kmin = 5 KB); DCTCP runs with cut-off
marking at 160 KB, per the DCTCP guideline that the threshold must
absorb the sawtooth/burstiness of a software stack.  The paper reports
the egress queue CDF: 90th percentile 76.6 KB for DCQCN vs 162.9 KB
for DCTCP — shorter queues mean lower latency for everything sharing
the port.  (Our defaults reproduce the DCTCP figure within 0.1 KB and
the DCQCN one within a factor ~1.5; see EXPERIMENTS.md.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro import units
from repro.analysis.stats import percentile
from repro.experiments import common
from repro.runner import Cell, execute
from repro.runner import scale

#: DCTCP marking threshold for 40 GbE per the DCTCP sizing guideline.
DCTCP_MARKING_BYTES = units.kb(160)


@dataclass
class QueueCdfResult:
    """Sampled egress-queue distribution for one protocol."""

    protocol: str
    samples_bytes: List[float]
    total_goodput_gbps: float

    def percentile_kb(self, q: float) -> float:
        return percentile(self.samples_bytes, q) / 1e3

    def row(self) -> List[str]:
        return [
            self.protocol,
            f"{self.percentile_kb(50):.1f}",
            f"{self.percentile_kb(90):.1f}",
            f"{self.percentile_kb(99):.1f}",
            f"{self.total_goodput_gbps:.1f}",
        ]


QUEUE_HEADERS = ["protocol", "q50 KB", "q90 KB", "q99 KB", "goodput Gbps"]


def queue_cell(
    protocol: str,
    incast_degree: int,
    warmup_ns: int,
    measure_ns: int,
    sample_interval_ns: int,
    seed: int,
) -> Dict[str, Any]:
    """One arm of Figure 19 — the worker-side entry point."""
    from repro.baselines.dctcp import add_dctcp_flow
    from repro.core.params import DCQCNParams
    from repro.sim.monitor import QueueSampler
    from repro.sim.switch import SwitchConfig
    from repro.sim.topology import single_switch

    if protocol == "dcqcn":
        marking = DCQCNParams.deployed()
    else:
        marking = DCQCNParams.deployed().with_cutoff_marking(DCTCP_MARKING_BYTES)
    net, switch, hosts = single_switch(
        incast_degree + 1,
        switch_config=SwitchConfig(marking=marking),
        seed=seed,
        dcqcn_params=DCQCNParams.deployed(),
    )
    receiver = hosts[-1]
    flows = []
    for sender in hosts[:incast_degree]:
        if protocol == "dcqcn":
            flow = net.add_flow(sender, receiver, cc="dcqcn")
        else:
            flow = add_dctcp_flow(net, sender, receiver)
        flow.set_greedy()
        flows.append(flow)

    net.run_for(warmup_ns)
    bottleneck_port = switch.port_to(receiver.nic).index
    sampler = QueueSampler(
        net.engine,
        switch,
        bottleneck_port,
        interval_ns=sample_interval_ns,
        stop_ns=net.engine.now + measure_ns,
    )
    delivered_before = sum(flow.bytes_delivered for flow in flows)
    net.run_for(measure_ns)
    delivered = sum(flow.bytes_delivered for flow in flows) - delivered_before
    return {
        "protocol": protocol,
        "samples_bytes": list(sampler.samples_bytes),
        "total_goodput_gbps": delivered * 8e9 / measure_ns / 1e9,
    }


_CELL_FN = "repro.experiments.latency:queue_cell"


def _cell_kwargs(
    protocol: str,
    incast_degree: int,
    warmup_ns: Optional[int],
    measure_ns: Optional[int],
    sample_interval_ns: int,
    seed: int,
) -> Dict[str, Any]:
    if protocol not in ("dcqcn", "dctcp"):
        raise ValueError(f"protocol must be 'dcqcn' or 'dctcp', got {protocol!r}")
    if warmup_ns is None:
        warmup_ns = scale.pick(units.ms(15), units.ms(40), units.ms(4))
    measure_ns = measure_ns or scale.pick(units.ms(10), units.ms(40), units.ms(2))
    return {
        "protocol": protocol,
        "incast_degree": incast_degree,
        "warmup_ns": warmup_ns,
        "measure_ns": measure_ns,
        "sample_interval_ns": sample_interval_ns,
        "seed": seed,
    }


def run_queue_comparison(
    protocol: str,
    incast_degree: int = 2,
    warmup_ns: Optional[int] = None,
    measure_ns: Optional[int] = None,
    sample_interval_ns: int = units.us(5),
    seed: int = 23,
) -> QueueCdfResult:
    """One arm of Figure 19 (``protocol`` in {"dcqcn", "dctcp"})."""
    kwargs = _cell_kwargs(
        protocol, incast_degree, warmup_ns, measure_ns, sample_interval_ns, seed
    )
    (value,) = execute([Cell(_CELL_FN, kwargs)])
    return QueueCdfResult(**value)


def run_fig19(**kwargs) -> List[QueueCdfResult]:
    """Both arms of Figure 19 (fanned out across workers)."""
    cells = [
        Cell(_CELL_FN, _cell_kwargs(
            protocol=protocol,
            incast_degree=kwargs.get("incast_degree", 2),
            warmup_ns=kwargs.get("warmup_ns"),
            measure_ns=kwargs.get("measure_ns"),
            sample_interval_ns=kwargs.get("sample_interval_ns", units.us(5)),
            seed=kwargs.get("seed", 23),
        ))
        for protocol in ("dcqcn", "dctcp")
    ]
    return [QueueCdfResult(**value) for value in execute(cells)]
