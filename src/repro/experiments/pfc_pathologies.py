"""PFC pathologies and their DCQCN fix (Figures 3, 4, 8, 9).

Two scenarios on the 3-tier Clos testbed of Figure 2:

* **Unfairness / parking lot (Figs 3, 8).**  H1-H3 (under T1-T3) and
  H4 (under T4) all write to R (under T4).  With PFC alone, T4 pauses
  its ports indiscriminately: the port from H4 carries one flow while
  the two leaf uplinks carry H1-H3 between them (per ECMP's coin
  flips), so H4 robs throughput.  With DCQCN, all four converge to a
  fair quarter of the bottleneck.

* **Victim flow (Figs 4, 9).**  H11-H14 (under T1) incast into R
  (under T4) while a victim VS (under T1) sends to VR (under T2) —
  a path that shares no congested link with the incast.  Cascading
  PAUSEs (T4 -> leaves -> spines -> ... -> T1) still throttle VS, and
  adding senders H31, H32 under T3 makes it worse.  DCQCN keeps the
  incast flows paced, PFC quiet, and the victim at full rate.

Each repetition reseeds the network so ECMP re-rolls flow placement —
the paper's run-to-run spread (min/median/max) is exactly this ECMP
randomness.  Both experiments are expressed as declarative
:class:`~repro.runner.Scenario` specs, so repetitions fan out across
cores (``REPRO_JOBS``) and hit the result cache on repeat runs.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro import units
from repro.analysis.stats import percentile
from repro.core.params import DCQCNParams
from repro.experiments import common
from repro.runner import FlowSpec, Scenario, run_scenario, run_sweep
from repro.runner import scale
from repro.sim.switch import SwitchConfig

#: the four competing writers of the unfairness scenario
UNFAIRNESS_HOSTS = ("H1", "H2", "H3", "H4")


@dataclass
class UnfairnessResult:
    """Per-host throughput distribution across repetitions (Figs 3/8)."""

    cc: str
    repetitions: int
    duration_ms: float
    #: host name -> list of per-run mean throughputs (bps)
    throughputs_bps: Dict[str, List[float]] = field(default_factory=dict)
    pause_frames: List[int] = field(default_factory=list)

    def stats_gbps(self, host: str):
        samples = self.throughputs_bps[host]
        return (
            min(samples) / 1e9,
            percentile(samples, 50) / 1e9,
            max(samples) / 1e9,
        )

    def table(self) -> str:
        rows = []
        for host in sorted(self.throughputs_bps):
            lo, med, hi = self.stats_gbps(host)
            rows.append([host, f"{lo:.2f}", f"{med:.2f}", f"{hi:.2f}"])
        return common.format_table(
            ["host", "min Gbps", "median Gbps", "max Gbps"], rows
        )


def unfairness_scenario(
    cc: str = "none",
    duration_ns: Optional[int] = None,
    warmup_ns: Optional[int] = None,
    params: Optional[DCQCNParams] = None,
    switch_config: Optional[SwitchConfig] = None,
    mtu_bytes: int = 1000,
) -> Scenario:
    """The Figure 3/8 spec: H1..H4 (one per ToR) write to R under T4."""
    duration_ns = duration_ns or scale.pick(units.ms(10), units.ms(30), units.ms(2))
    if warmup_ns is None:
        # DCQCN's additive increase needs ~15 ms to converge after the
        # initial line-rate burst; measure steady state, as the paper's
        # long transfers do.
        warmup_ns = (
            scale.pick(units.ms(15), units.ms(30), units.ms(3))
            if cc == "dcqcn"
            else 0
        )
    topology_kwargs: dict = {"hosts_per_tor": 2}
    if params is not None:
        topology_kwargs["dcqcn_params"] = params
    if switch_config is not None:
        topology_kwargs["switch_config"] = switch_config
    flows = tuple(
        FlowSpec(name=f"H{tor + 1}", src=f"{tor}:0", dst="3:1", cc=cc,
                 mtu_bytes=mtu_bytes)
        for tor in range(4)
    )
    return Scenario(
        topology="three_tier_clos",
        flows=flows,
        warmup_ns=warmup_ns,
        duration_ns=duration_ns,
        topology_kwargs=topology_kwargs,
        label=f"unfairness/{cc}",
    )


def run_unfairness(
    cc: str = "none",
    repetitions: Optional[int] = None,
    duration_ns: Optional[int] = None,
    warmup_ns: Optional[int] = None,
    params: Optional[DCQCNParams] = None,
    switch_config: Optional[SwitchConfig] = None,
    mtu_bytes: int = 1000,
) -> UnfairnessResult:
    """Figure 3 (``cc="none"``) / Figure 8 (``cc="dcqcn"``)."""
    repetitions = repetitions or scale.pick(4, 10, 2)
    scenario = unfairness_scenario(
        cc=cc,
        duration_ns=duration_ns,
        warmup_ns=warmup_ns,
        params=params,
        switch_config=switch_config,
        mtu_bytes=mtu_bytes,
    )
    runs = run_scenario(scenario, scale.seeds_for(repetitions))
    result = UnfairnessResult(
        cc=cc, repetitions=repetitions, duration_ms=scenario.duration_ns / 1e6
    )
    for name in UNFAIRNESS_HOSTS:
        result.throughputs_bps[name] = []
    for run in runs:
        for name in UNFAIRNESS_HOSTS:
            result.throughputs_bps[name].append(run.flows_bps[name])
        result.pause_frames.append(int(run.metric("pfc.pause_tx")))
    return result


@dataclass
class VictimFlowResult:
    """Victim throughput vs number of extra senders under T3 (Figs 4/9)."""

    cc: str
    repetitions: int
    duration_ms: float
    #: senders under T3 -> per-run victim throughput (bps)
    victim_bps: Dict[int, List[float]] = field(default_factory=dict)

    def median_gbps(self, t3_senders: int) -> float:
        return percentile(self.victim_bps[t3_senders], 50) / 1e9

    def table(self) -> str:
        # a point whose every repetition failed (timeout/crash) has no
        # samples to summarize — print n/a rather than crash the table
        rows = [
            [n, f"{self.median_gbps(n):.2f}" if self.victim_bps[n] else "n/a"]
            for n in sorted(self.victim_bps)
        ]
        return common.format_table(
            ["senders under T3", "victim median Gbps"], rows
        )


def victim_scenario(
    cc: str,
    t3_senders: int,
    duration_ns: int,
    warmup_ns: int,
    params: Optional[DCQCNParams] = None,
    switch_config: Optional[SwitchConfig] = None,
    mtu_bytes: int = 1000,
) -> Scenario:
    """The Figure 4/9 spec at one T3 sender count.

    H11-H14 (under T1) plus ``t3_senders`` hosts under T3 incast into
    R (under T4); the victim VS (under T1) sends to VR (under T2).
    """
    incast = [
        FlowSpec(name=f"H1{i + 1}", src=f"0:{i}", dst="3:0", cc=cc,
                 mtu_bytes=mtu_bytes)
        for i in range(4)
    ]
    incast += [
        FlowSpec(name=f"H3{i + 1}", src=f"2:{i}", dst="3:0", cc=cc,
                 mtu_bytes=mtu_bytes)
        for i in range(t3_senders)
    ]
    victim = FlowSpec(name="victim", src="0:4", dst="1:0", cc=cc,
                      mtu_bytes=mtu_bytes)
    topology_kwargs: dict = {"hosts_per_tor": 5}
    if params is not None:
        topology_kwargs["dcqcn_params"] = params
    if switch_config is not None:
        topology_kwargs["switch_config"] = switch_config
    return Scenario(
        topology="three_tier_clos",
        flows=tuple(incast) + (victim,),
        warmup_ns=warmup_ns,
        duration_ns=duration_ns,
        topology_kwargs=topology_kwargs,
        label=f"victim/{cc}/{t3_senders}",
    )


def run_victim_flow(
    cc: str = "none",
    t3_sender_counts: Sequence[int] = (0, 1, 2),
    repetitions: Optional[int] = None,
    duration_ns: Optional[int] = None,
    warmup_ns: Optional[int] = None,
    params: Optional[DCQCNParams] = None,
    switch_config: Optional[SwitchConfig] = None,
    mtu_bytes: int = 1000,
) -> VictimFlowResult:
    """Figure 4 (``cc="none"``) / Figure 9 (``cc="dcqcn"``).

    VS (under T1) sends to VR (under T2); H11-H14 (under T1) and
    0-2 extra senders under T3 incast into R (under T4).
    """
    repetitions = repetitions or scale.pick(4, 10, 2)
    duration_ns = duration_ns or scale.pick(units.ms(10), units.ms(30), units.ms(2))
    if warmup_ns is None:
        # The victim must climb back from the initial all-at-line-rate
        # melee at ~0.7 Gbps/ms (additive increase), so it needs a
        # longer warmup than the symmetric unfairness scenario.
        warmup_ns = (
            scale.pick(units.ms(30), units.ms(60), units.ms(3))
            if cc == "dcqcn"
            else 0
        )
    scenarios = {
        count: victim_scenario(
            cc=cc,
            t3_senders=count,
            duration_ns=duration_ns,
            warmup_ns=warmup_ns,
            params=params,
            switch_config=switch_config,
            mtu_bytes=mtu_bytes,
        )
        for count in t3_sender_counts
    }
    seeds = {
        count: scale.seeds_for(repetitions, base=2000 + 100 * count)
        for count in t3_sender_counts
    }
    sweep = run_sweep("t3_senders", scenarios, seeds)
    if sweep.total_failures():
        warnings.warn(
            f"{sweep.total_failures()} of the victim-flow repetitions "
            "failed (timeout/crash); medians cover the survivors"
        )
    result = VictimFlowResult(
        cc=cc, repetitions=repetitions, duration_ms=duration_ns / 1e6
    )
    for point in sweep.points:
        result.victim_bps[point.value] = point.flow_samples("victim")
    return result


# --- scripted pause storms (repro.faults migration) -------------------------
#
# The unfairness/victim scenarios above induce PAUSE organically through
# incast.  The storm scenario below instead *scripts* the pathology with a
# :class:`repro.faults.PauseStorm` — a slow-receiver NIC asserting PFC on
# its access link, the §7 pathology the paper's deadwatch/storm-control
# deployments guard against — so the blast radius is controlled and the
# recovery metrics (time-to-recover, victim loss) are measured by the
# fault subsystem itself.


@dataclass
class PauseStormResult:
    """Feeder/victim damage from a scripted PAUSE storm, per CC variant."""

    repetitions: int
    duration_ms: float
    storm_ms: float
    #: cc -> list of per-run feeder throughputs under storm (bps)
    feeder_bps: Dict[str, List[float]] = field(default_factory=dict)
    #: cc -> list of per-run victim throughputs under storm (bps)
    victim_bps: Dict[str, List[float]] = field(default_factory=dict)
    #: cc -> list of per-run victim throughputs with no storm (bps)
    clean_victim_bps: Dict[str, List[float]] = field(default_factory=dict)
    #: cc -> list of per-run PAUSE frame totals under storm
    pause_frames: Dict[str, List[int]] = field(default_factory=dict)
    #: cc -> list of per-run in-storm goodput fractions (fault gauge)
    goodput_fraction: Dict[str, List[float]] = field(default_factory=dict)

    def victim_loss_pct(self, cc: str) -> float:
        """Median victim throughput loss vs the storm-free run."""
        clean = percentile(self.clean_victim_bps[cc], 50)
        stormy = percentile(self.victim_bps[cc], 50)
        if clean <= 0:
            return 0.0
        return 100.0 * (1.0 - stormy / clean)

    def table(self) -> str:
        rows = []
        for cc in sorted(self.victim_bps):
            rows.append([
                cc,
                f"{percentile(self.feeder_bps[cc], 50) / 1e9:.2f}",
                f"{percentile(self.victim_bps[cc], 50) / 1e9:.2f}",
                f"{percentile(self.clean_victim_bps[cc], 50) / 1e9:.2f}",
                f"{self.victim_loss_pct(cc):.1f}%",
                str(int(percentile(self.pause_frames[cc], 50))),
                f"{percentile(self.goodput_fraction[cc], 50):.2f}",
            ])
        return common.format_table(
            [
                "cc",
                "feeder Gbps",
                "victim Gbps",
                "victim clean Gbps",
                "victim loss",
                "PAUSE frames",
                "storm goodput",
            ],
            rows,
        )


def pause_storm_scenario(
    cc: str = "none",
    duration_ns: Optional[int] = None,
    warmup_ns: Optional[int] = None,
    storm_ns: Optional[int] = None,
    storm_count: int = 1,
    with_storm: bool = True,
    switch_config: Optional[SwitchConfig] = None,
) -> Scenario:
    """Dumbbell feeder+victim spec with a scripted PAUSE storm on R1.

    L1 writes to R1 (the stormed receiver) and L2 writes to R2 (the
    victim); both share the SL--SR trunk.  While R1 asserts PAUSE, the
    frames parked in SR back the trunk up and — without congestion
    control — cascade PAUSE onto SL and both senders, robbing the
    victim.  With DCQCN the feeder is paced off before the cascade
    forms and the victim keeps its share.  The plan also arms the
    :class:`~repro.faults.DeadlockWatchdog`, which must stay quiet:
    a storm is a stall, not a cyclic buffer dependency.
    """
    from repro.faults import FaultPlan, PauseStorm, WatchdogConfig

    duration_ns = duration_ns or scale.pick(units.ms(10), units.ms(30), units.ms(2))
    if warmup_ns is None:
        warmup_ns = (
            scale.pick(units.ms(15), units.ms(30), units.ms(1))
            if cc == "dcqcn"
            else 0
        )
    # PFC is lossless, so a storm only *delays* frames; damage survives
    # into the mean only if the storm outlasts the catch-up headroom
    # after it (each access link has 2x a flow's trunk share).  The
    # default storm runs from 25% of the window to the end: long enough
    # for the cascade to reach the victim's sender and nothing left to
    # catch up in.
    storm_ns = storm_ns or max((3 * duration_ns) // 4, units.us(100))
    faults = None
    label = f"pause_storm/{cc}/clean"
    if with_storm:
        # repeats (if storm_count > 1) ride a half-window cooldown so
        # the recovery tracker can watch each one heal
        period_ns = storm_ns + max(duration_ns // 2, units.us(100))
        faults = FaultPlan(
            injectors=(
                PauseStorm(
                    host="R1",
                    start_ns=warmup_ns + duration_ns // 4,
                    duration_ns=storm_ns,
                    period_ns=period_ns if storm_count > 1 else 0,
                    count=storm_count,
                ),
            ),
            watchdog=WatchdogConfig(),
        )
        label = f"pause_storm/{cc}/storm{storm_count}"
    return Scenario(
        topology="dumbbell",
        topology_kwargs={
            "n_left": 2,
            "n_right": 2,
            **({"switch_config": switch_config} if switch_config else {}),
        },
        flows=(
            FlowSpec(name="feeder", src="L1", dst="R1", cc=cc),
            FlowSpec(name="victim", src="L2", dst="R2", cc=cc),
        ),
        warmup_ns=warmup_ns,
        duration_ns=duration_ns,
        label=label,
        faults=faults,
    )


def run_pause_storm(
    ccs: Sequence[str] = ("none", "dcqcn"),
    repetitions: Optional[int] = None,
    duration_ns: Optional[int] = None,
    warmup_ns: Optional[int] = None,
    storm_ns: Optional[int] = None,
    storm_count: int = 1,
) -> PauseStormResult:
    """Scripted PAUSE storm, with and without DCQCN.

    Without CC the storm cascades over the trunk and the victim loses
    throughput it should not; with DCQCN the cascade never forms.  Each
    CC variant is also run storm-free to give the victim a baseline.
    """
    repetitions = repetitions or scale.pick(3, 6, 2)
    sample = pause_storm_scenario(
        cc=ccs[0], duration_ns=duration_ns, warmup_ns=warmup_ns,
        storm_ns=storm_ns, storm_count=storm_count,
    )
    result = PauseStormResult(
        repetitions=repetitions,
        duration_ms=sample.duration_ns / 1e6,
        storm_ms=(
            storm_ns or max((3 * sample.duration_ns) // 4, units.us(100))
        ) / 1e6,
    )
    for cc in ccs:
        stormy = pause_storm_scenario(
            cc=cc, duration_ns=duration_ns, warmup_ns=warmup_ns,
            storm_ns=storm_ns, storm_count=storm_count,
        )
        clean = pause_storm_scenario(
            cc=cc, duration_ns=duration_ns, warmup_ns=warmup_ns,
            storm_ns=storm_ns, with_storm=False,
        )
        seeds = scale.seeds_for(repetitions, base=7000)
        stormy_runs = run_scenario(stormy, seeds)
        clean_runs = run_scenario(clean, seeds)
        result.feeder_bps[cc] = [run.flows_bps["feeder"] for run in stormy_runs]
        result.victim_bps[cc] = [run.flows_bps["victim"] for run in stormy_runs]
        result.clean_victim_bps[cc] = [
            run.flows_bps["victim"] for run in clean_runs
        ]
        result.pause_frames[cc] = [
            int(run.metric("pfc.pause_tx")) for run in stormy_runs
        ]
        result.goodput_fraction[cc] = [
            run.metrics.get("gauges", {}).get("fault.goodput_fraction", 1.0)
            for run in stormy_runs
        ]
    return result
