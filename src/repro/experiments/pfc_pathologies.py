"""PFC pathologies and their DCQCN fix (Figures 3, 4, 8, 9).

Two scenarios on the 3-tier Clos testbed of Figure 2:

* **Unfairness / parking lot (Figs 3, 8).**  H1-H3 (under T1-T3) and
  H4 (under T4) all write to R (under T4).  With PFC alone, T4 pauses
  its ports indiscriminately: the port from H4 carries one flow while
  the two leaf uplinks carry H1-H3 between them (per ECMP's coin
  flips), so H4 robs throughput.  With DCQCN, all four converge to a
  fair quarter of the bottleneck.

* **Victim flow (Figs 4, 9).**  H11-H14 (under T1) incast into R
  (under T4) while a victim VS (under T1) sends to VR (under T2) —
  a path that shares no congested link with the incast.  Cascading
  PAUSEs (T4 -> leaves -> spines -> ... -> T1) still throttle VS, and
  adding senders H31, H32 under T3 makes it worse.  DCQCN keeps the
  incast flows paced, PFC quiet, and the victim at full rate.

Each repetition reseeds the network so ECMP re-rolls flow placement —
the paper's run-to-run spread (min/median/max) is exactly this ECMP
randomness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro import units
from repro.analysis.stats import percentile
from repro.core.params import DCQCNParams
from repro.experiments import common
from repro.sim.switch import SwitchConfig
from repro.sim.topology import three_tier_clos


@dataclass
class UnfairnessResult:
    """Per-host throughput distribution across repetitions (Figs 3/8)."""

    cc: str
    repetitions: int
    duration_ms: float
    #: host name -> list of per-run mean throughputs (bps)
    throughputs_bps: Dict[str, List[float]] = field(default_factory=dict)
    pause_frames: List[int] = field(default_factory=list)

    def stats_gbps(self, host: str):
        samples = self.throughputs_bps[host]
        return (
            min(samples) / 1e9,
            percentile(samples, 50) / 1e9,
            max(samples) / 1e9,
        )

    def table(self) -> str:
        rows = []
        for host in sorted(self.throughputs_bps):
            lo, med, hi = self.stats_gbps(host)
            rows.append([host, f"{lo:.2f}", f"{med:.2f}", f"{hi:.2f}"])
        return common.format_table(
            ["host", "min Gbps", "median Gbps", "max Gbps"], rows
        )


def run_unfairness(
    cc: str = "none",
    repetitions: Optional[int] = None,
    duration_ns: Optional[int] = None,
    warmup_ns: Optional[int] = None,
    params: Optional[DCQCNParams] = None,
    switch_config: Optional[SwitchConfig] = None,
    mtu_bytes: int = 1000,
) -> UnfairnessResult:
    """Figure 3 (``cc="none"``) / Figure 8 (``cc="dcqcn"``)."""
    repetitions = repetitions or common.pick(4, 10)
    duration_ns = duration_ns or common.pick(units.ms(10), units.ms(30))
    if warmup_ns is None:
        # DCQCN's additive increase needs ~15 ms to converge after the
        # initial line-rate burst; measure steady state, as the paper's
        # long transfers do.
        warmup_ns = common.pick(units.ms(15), units.ms(30)) if cc == "dcqcn" else 0
    result = UnfairnessResult(
        cc=cc, repetitions=repetitions, duration_ms=duration_ns / 1e6
    )
    sender_names = ["H1", "H2", "H3", "H4"]
    for name in sender_names:
        result.throughputs_bps[name] = []
    for seed in common.seeds_for(repetitions):
        spec = three_tier_clos(
            hosts_per_tor=2,
            seed=seed,
            dcqcn_params=params,
            switch_config=switch_config,
        )
        receiver = spec.host(3, 1)  # second host under T4
        senders = [spec.host(tor, 0) for tor in range(4)]  # H1..H4
        flows = []
        for sender in senders:
            flow = spec.net.add_flow(sender, receiver, cc=cc, mtu_bytes=mtu_bytes)
            flow.set_greedy()
            flows.append(flow)
        spec.net.run_for(warmup_ns)
        baseline = [flow.bytes_delivered for flow in flows]
        spec.net.run_for(duration_ns)
        for name, flow, before in zip(sender_names, flows, baseline):
            result.throughputs_bps[name].append(
                (flow.bytes_delivered - before) * 8e9 / duration_ns
            )
        result.pause_frames.append(spec.net.total_pause_frames_sent())
    return result


@dataclass
class VictimFlowResult:
    """Victim throughput vs number of extra senders under T3 (Figs 4/9)."""

    cc: str
    repetitions: int
    duration_ms: float
    #: senders under T3 -> per-run victim throughput (bps)
    victim_bps: Dict[int, List[float]] = field(default_factory=dict)

    def median_gbps(self, t3_senders: int) -> float:
        return percentile(self.victim_bps[t3_senders], 50) / 1e9

    def table(self) -> str:
        rows = [
            [n, f"{self.median_gbps(n):.2f}"]
            for n in sorted(self.victim_bps)
        ]
        return common.format_table(
            ["senders under T3", "victim median Gbps"], rows
        )


def run_victim_flow(
    cc: str = "none",
    t3_sender_counts: Sequence[int] = (0, 1, 2),
    repetitions: Optional[int] = None,
    duration_ns: Optional[int] = None,
    warmup_ns: Optional[int] = None,
    params: Optional[DCQCNParams] = None,
    switch_config: Optional[SwitchConfig] = None,
    mtu_bytes: int = 1000,
) -> VictimFlowResult:
    """Figure 4 (``cc="none"``) / Figure 9 (``cc="dcqcn"``).

    VS (under T1) sends to VR (under T2); H11-H14 (under T1) and
    0-2 extra senders under T3 incast into R (under T4).
    """
    repetitions = repetitions or common.pick(4, 10)
    duration_ns = duration_ns or common.pick(units.ms(10), units.ms(30))
    if warmup_ns is None:
        # The victim must climb back from the initial all-at-line-rate
        # melee at ~0.7 Gbps/ms (additive increase), so it needs a
        # longer warmup than the symmetric unfairness scenario.
        warmup_ns = common.pick(units.ms(30), units.ms(60)) if cc == "dcqcn" else 0
    result = VictimFlowResult(
        cc=cc, repetitions=repetitions, duration_ms=duration_ns / 1e6
    )
    for count in t3_sender_counts:
        result.victim_bps[count] = []
        for seed in common.seeds_for(repetitions, base=2000 + 100 * count):
            spec = three_tier_clos(
                hosts_per_tor=5,
                seed=seed,
                dcqcn_params=params,
                switch_config=switch_config,
            )
            receiver = spec.host(3, 0)  # R under T4
            incast_senders = [spec.host(0, i) for i in range(4)]  # H11-H14
            incast_senders += [spec.host(2, i) for i in range(count)]  # H31, H32
            victim_src = spec.host(0, 4)  # VS under T1
            victim_dst = spec.host(1, 0)  # VR under T2
            for sender in incast_senders:
                flow = spec.net.add_flow(sender, receiver, cc=cc, mtu_bytes=mtu_bytes)
                flow.set_greedy()
            victim = spec.net.add_flow(victim_src, victim_dst, cc=cc, mtu_bytes=mtu_bytes)
            victim.set_greedy()
            spec.net.run_for(warmup_ns)
            before = victim.bytes_delivered
            spec.net.run_for(duration_ns)
            result.victim_bps[count].append(
                (victim.bytes_delivered - before) * 8e9 / duration_ns
            )
    return result
