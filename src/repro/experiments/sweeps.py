"""Fluid-model parameter sweeps (Figures 11 and 12).

Thin orchestration over :mod:`repro.fluid.sweep` that runs the four
Figure 11 panels and the Figure 12 g-study and renders the tables the
benchmarks print.  Each panel / incast degree is one executor cell:
the cell integrates the fluid model and returns only the summary
surface (steady-state rate gaps or queue statistics), not the full
trace, so results stay JSON-small and cacheable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.experiments import common
from repro.runner import Cell, execute
from repro.runner import scale

#: panel name -> (sweep function name, unit label, value formatter)
FIG11_PANELS: Dict[str, tuple] = {
    "byte_counter": ("sweep_byte_counter", "KB", lambda v: f"{v / 1e3:.0f}"),
    "timer": ("sweep_timer", "us", lambda v: f"{v * 1e6:.0f}"),
    "kmax": ("sweep_kmax", "KB", lambda v: f"{v / 1e3:.0f}"),
    "pmax": ("sweep_pmax", "", lambda v: f"{v:.2f}"),
}


@dataclass
class PanelSummary:
    """Steady-state summary of one Figure 11 panel.

    Duck-compatible with :class:`repro.fluid.sweep.SweepResult` for
    table rendering (``parameter`` / ``values`` / ``final_diff_gbps``),
    minus the full rate surface.
    """

    parameter: str
    values: np.ndarray
    final_diff: np.ndarray

    def final_diff_gbps(self) -> np.ndarray:
        return self.final_diff

    def best_value(self) -> float:
        """Parameter value with the smallest trailing rate gap."""
        return float(self.values[np.argmin(self.final_diff)])


def fig11_cell(panel: str, duration_s: float) -> Dict[str, Any]:
    """Integrate one Figure 11 panel — the worker-side entry point."""
    from repro.fluid import sweep as fluid_sweep

    fn = getattr(fluid_sweep, FIG11_PANELS[panel][0])
    result = fn(duration_s=duration_s)
    return {
        "parameter": result.parameter,
        "values": result.values.tolist(),
        "final_diff_gbps": result.final_diff_gbps().tolist(),
    }


_FIG11_FN = "repro.experiments.sweeps:fig11_cell"


def _panel_kwargs(panel: str, duration_s: Optional[float]) -> Dict[str, Any]:
    if panel not in FIG11_PANELS:
        raise ValueError(
            f"unknown panel {panel!r}; choose from {sorted(FIG11_PANELS)}"
        )
    duration_s = duration_s or scale.pick(0.08, 0.2, 0.02)
    return {"panel": panel, "duration_s": duration_s}


def _panel_summary(value: Dict[str, Any]) -> PanelSummary:
    return PanelSummary(
        parameter=value["parameter"],
        values=np.asarray(value["values"]),
        final_diff=np.asarray(value["final_diff_gbps"]),
    )


def run_fig11_panel(panel: str, duration_s: float = None) -> PanelSummary:
    """One Figure 11 panel (convergence vs one parameter)."""
    (value,) = execute([Cell(_FIG11_FN, _panel_kwargs(panel, duration_s))])
    return _panel_summary(value)


def run_fig11(
    panels: Optional[Sequence[str]] = None, duration_s: float = None
) -> Dict[str, PanelSummary]:
    """All four Figure 11 panels, fanned out across workers."""
    panels = list(panels or sorted(FIG11_PANELS))
    cells = [Cell(_FIG11_FN, _panel_kwargs(p, duration_s)) for p in panels]
    values = execute(cells)
    return {panel: _panel_summary(v) for panel, v in zip(panels, values)}


def fig11_table(panel: str, result) -> str:
    _, unit, fmt = FIG11_PANELS[panel]
    header = f"{result.parameter} ({unit})" if unit else result.parameter
    rows = [
        [fmt(value), f"{diff:.2f}"]
        for value, diff in zip(result.values, result.final_diff_gbps())
    ]
    return common.format_table([header, "steady |r1-r2| Gbps"], rows)


@dataclass
class GQueueSummary:
    """Steady queue statistics per g for one incast degree.

    Duck-compatible with :class:`repro.fluid.sweep.GQueueResult` for
    the consumers here and in the benchmarks (``g_values`` plus the
    ``steady_queue_kb()`` / ``queue_stddev_kb()`` arrays, already
    reduced over the trailing half of the run).
    """

    g_values: np.ndarray
    incast_degree: int
    steady_kb: np.ndarray
    stddev_kb: np.ndarray

    def steady_queue_kb(self) -> np.ndarray:
        return self.steady_kb

    def queue_stddev_kb(self) -> np.ndarray:
        return self.stddev_kb


def fig12_cell(
    degree: int, g_values: List[float], duration_s: float
) -> Dict[str, Any]:
    """One incast degree of the g-study — the worker-side entry point."""
    from repro.fluid.sweep import sweep_g_queue

    result = sweep_g_queue(
        g_values=tuple(g_values), incast_degree=degree, duration_s=duration_s
    )
    return {
        "g_values": result.g_values.tolist(),
        "incast_degree": degree,
        "steady_kb": result.steady_queue_kb().tolist(),
        "stddev_kb": result.queue_stddev_kb().tolist(),
    }


_FIG12_FN = "repro.experiments.sweeps:fig12_cell"


@dataclass
class Fig12Result:
    """Figure 12: queue statistics per (g, incast degree)."""

    per_degree: Dict[int, GQueueSummary]

    def table(self) -> str:
        rows = []
        for degree, res in sorted(self.per_degree.items()):
            for g, mean_kb, std_kb in zip(
                res.g_values, res.steady_queue_kb(), res.queue_stddev_kb()
            ):
                rows.append(
                    [f"{degree}:1", f"1/{round(1 / g)}", f"{mean_kb:.1f}", f"{std_kb:.1f}"]
                )
        return common.format_table(
            ["incast", "g", "steady queue KB", "queue stddev KB"], rows
        )


def run_fig12(
    degrees=(2, 16),
    g_values=(1.0 / 16.0, 1.0 / 256.0),
    duration_s: float = None,
) -> Fig12Result:
    """Figure 12: queue length/stability for 2:1 and 16:1 incast."""
    duration_s = duration_s or scale.pick(0.08, 0.2, 0.02)
    cells = [
        Cell(_FIG12_FN, {
            "degree": degree,
            "g_values": list(g_values),
            "duration_s": duration_s,
        })
        for degree in degrees
    ]
    values = execute(cells)
    return Fig12Result(
        per_degree={
            value["incast_degree"]: GQueueSummary(
                g_values=np.asarray(value["g_values"]),
                incast_degree=value["incast_degree"],
                steady_kb=np.asarray(value["steady_kb"]),
                stddev_kb=np.asarray(value["stddev_kb"]),
            )
            for value in values
        }
    )
