"""Fluid-model parameter sweeps (Figures 11 and 12).

Thin orchestration over :mod:`repro.fluid.sweep` that runs the four
Figure 11 panels and the Figure 12 g-study and renders the tables the
benchmarks print.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from repro.experiments import common
from repro.fluid.sweep import (
    GQueueResult,
    SweepResult,
    sweep_byte_counter,
    sweep_g_queue,
    sweep_kmax,
    sweep_pmax,
    sweep_timer,
)

#: panel name -> (sweep function, unit label, value formatter)
FIG11_PANELS: Dict[str, tuple] = {
    "byte_counter": (sweep_byte_counter, "KB", lambda v: f"{v / 1e3:.0f}"),
    "timer": (sweep_timer, "us", lambda v: f"{v * 1e6:.0f}"),
    "kmax": (sweep_kmax, "KB", lambda v: f"{v / 1e3:.0f}"),
    "pmax": (sweep_pmax, "", lambda v: f"{v:.2f}"),
}


def run_fig11_panel(panel: str, duration_s: float = None) -> SweepResult:
    """One Figure 11 panel (convergence vs one parameter)."""
    try:
        fn, _, _ = FIG11_PANELS[panel]
    except KeyError:
        raise ValueError(
            f"unknown panel {panel!r}; choose from {sorted(FIG11_PANELS)}"
        ) from None
    duration_s = duration_s or common.pick(0.08, 0.2)
    return fn(duration_s=duration_s)


def fig11_table(panel: str, result: SweepResult) -> str:
    _, unit, fmt = FIG11_PANELS[panel]
    header = f"{result.parameter} ({unit})" if unit else result.parameter
    rows = [
        [fmt(value), f"{diff:.2f}"]
        for value, diff in zip(result.values, result.final_diff_gbps())
    ]
    return common.format_table([header, "steady |r1-r2| Gbps"], rows)


@dataclass
class Fig12Result:
    """Figure 12: queue statistics per (g, incast degree)."""

    per_degree: Dict[int, GQueueResult]

    def table(self) -> str:
        rows = []
        for degree, res in sorted(self.per_degree.items()):
            for g, mean_kb, std_kb in zip(
                res.g_values, res.steady_queue_kb(), res.queue_stddev_kb()
            ):
                rows.append(
                    [f"{degree}:1", f"1/{round(1 / g)}", f"{mean_kb:.1f}", f"{std_kb:.1f}"]
                )
        return common.format_table(
            ["incast", "g", "steady queue KB", "queue stddev KB"], rows
        )


def run_fig12(
    degrees=(2, 16),
    g_values=(1.0 / 16.0, 1.0 / 256.0),
    duration_s: float = None,
) -> Fig12Result:
    """Figure 12: queue length/stability for 2:1 and 16:1 incast."""
    duration_s = duration_s or common.pick(0.08, 0.2)
    return Fig12Result(
        per_degree={
            degree: sweep_g_queue(
                g_values=g_values, incast_degree=degree, duration_s=duration_s
            )
            for degree in degrees
        }
    )
