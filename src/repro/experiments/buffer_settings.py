"""Buffer threshold table (paper §4) and an in-simulator check.

Regenerates the paper's numbers for the Trident II profile and then
*demonstrates* the property they guarantee: with the deployed
thresholds, ECN marking happens and PFC stays (almost) silent; with
the misconfigured static thresholds, PFC fires before ECN.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro import units
from repro.buffers.thresholds import ThresholdPlan, plan_thresholds
from repro.experiments import common
from repro.runner import Cell, execute
from repro.runner import scale


def section4_table(plan: Optional[ThresholdPlan] = None) -> str:
    """The §4 quantities for the paper's switch (defaults reproduce it)."""
    plan = plan or plan_thresholds()
    rows = [
        ["t_flight (headroom / port / priority)", f"{plan.headroom_bytes / 1e3:.2f} KB"],
        ["t_PFC static upper bound", f"{plan.static_pfc_bound_bytes / 1e3:.2f} KB"],
        ["t_ECN bound (static t_PFC)", f"{plan.ecn_bound_static_bytes / 1e3:.2f} KB"],
        [
            f"t_ECN bound (dynamic, beta={plan.beta:g})",
            f"{plan.ecn_bound_dynamic_bytes / 1e3:.2f} KB",
        ],
        ["deployed Kmin", f"{plan.kmin_bytes / 1e3:.2f} KB"],
        ["Kmin feasible (>= 1 MTU)", str(plan.kmin_feasible)],
        ["ECN guaranteed before PFC", str(plan.ecn_before_pfc)],
    ]
    return common.format_table(["quantity", "value"], rows)


@dataclass
class EcnBeforePfcCheck:
    """Which mechanism carries steady-state congestion control?

    ``pause_frames`` / ``marked_packets`` cover the steady-state
    window (after warmup); ``startup_pause_frames`` counts the
    line-rate start transient separately, since the paper is explicit
    that PFC *may* fire there ("we rely on PFC to allow senders to
    start at line rate").  ``ecn_first`` demands that ECN engaged and
    PFC stayed silent through *both* phases — which the deployed
    thresholds achieve at the default 8:1 load and the Figure 18
    misconfiguration does not.
    """

    configuration: str
    marked_packets: int
    pause_frames: int
    dropped_packets: int
    startup_pause_frames: int

    @property
    def ecn_first(self) -> bool:
        return (
            self.marked_packets > 0
            and self.pause_frames == 0
            and self.startup_pause_frames == 0
        )


def ecn_check_cell(
    misconfigured: bool,
    incast_degree: int,
    duration_ns: int,
    warmup_ns: int,
    seed: int,
) -> Dict[str, Any]:
    """Drive an incast and observe which mechanism fires — worker entry."""
    from repro.core.params import DCQCNParams
    from repro.sim.switch import SwitchConfig
    from repro.sim.topology import single_switch

    if misconfigured:
        params = DCQCNParams.deployed().with_red_marking(
            kmin_bytes=units.kb(122), kmax_bytes=units.kb(200), pmax=0.01
        )
        config = SwitchConfig(
            pfc_mode="static",
            t_pfc_static_bytes=units.kb(24.47),
            marking=params,
        )
        name = "misconfigured (static t_PFC, deep t_ECN)"
    else:
        params = DCQCNParams.deployed()
        config = SwitchConfig(marking=params)
        name = "deployed (dynamic t_PFC, Kmin 5KB)"
    net, switch, hosts = single_switch(
        incast_degree + 1, switch_config=config, seed=seed, dcqcn_params=params
    )
    receiver = hosts[-1]
    for sender in hosts[:incast_degree]:
        flow = net.add_flow(sender, receiver, cc="dcqcn")
        flow.set_greedy()
    net.run_for(warmup_ns)
    startup_pauses = switch.pause_frames_sent
    marks_before = switch.marked_packets
    drops_before = switch.dropped_packets
    net.run_for(duration_ns)
    return {
        "configuration": name,
        "marked_packets": switch.marked_packets - marks_before,
        "pause_frames": switch.pause_frames_sent - startup_pauses,
        "dropped_packets": switch.dropped_packets - drops_before,
        "startup_pause_frames": startup_pauses,
    }


_CELL_FN = "repro.experiments.buffer_settings:ecn_check_cell"


def run_ecn_before_pfc_check(
    misconfigured: bool,
    incast_degree: int = 8,
    duration_ns: Optional[int] = None,
    warmup_ns: Optional[int] = None,
    seed: int = 53,
) -> EcnBeforePfcCheck:
    """Drive an incast and observe which mechanism fires.

    ``misconfigured=True`` uses the Figure 18 mis-setting (static
    t_PFC = 24.47 KB, marking threshold 5x higher).
    """
    duration_ns = duration_ns or scale.pick(units.ms(8), units.ms(20), units.ms(2))
    if warmup_ns is None:
        warmup_ns = scale.pick(units.ms(5), units.ms(15), units.ms(2))
    kwargs = {
        "misconfigured": misconfigured,
        "incast_degree": incast_degree,
        "duration_ns": duration_ns,
        "warmup_ns": warmup_ns,
        "seed": seed,
    }
    (value,) = execute([Cell(_CELL_FN, kwargs)])
    return EcnBeforePfcCheck(**value)
