"""Shared experiment plumbing — now thin shims over :mod:`repro.runner`.

The scale/seed policy, table rendering and results directory moved to
the runner layer (``repro.runner.scale`` / ``repro.runner.results`` /
``repro.runner.cache``).  The names here are kept as deprecated
aliases so external callers, examples and older benchmarks keep
working unchanged.
"""

from __future__ import annotations

import warnings
from pathlib import Path
from typing import List, Sequence

from repro.runner import cache as _cache
from repro.runner import scale as _scale
from repro.runner.results import format_table  # noqa: F401  (re-export)

#: environment variable selecting run scale (re-export)
SCALE_ENV = _scale.SCALE_ENV


def scale() -> str:
    """Deprecated alias for :func:`repro.runner.scale.scale`."""
    return _scale.scale()


def pick(quick_value, full_value):
    """Deprecated alias for :func:`repro.runner.scale.pick`."""
    warnings.warn(
        "repro.experiments.common.pick is deprecated; "
        "use repro.runner.scale.pick",
        DeprecationWarning,
        stacklevel=2,
    )
    return _scale.pick(quick_value, full_value)


def seeds_for(repetitions: int, base: int = 1000) -> List[int]:
    """Deprecated alias for :func:`repro.runner.scale.seeds_for`."""
    warnings.warn(
        "repro.experiments.common.seeds_for is deprecated; "
        "use repro.runner.scale.seeds_for",
        DeprecationWarning,
        stacklevel=2,
    )
    return _scale.seeds_for(repetitions, base=base)


def results_dir() -> Path:
    """Directory where benchmarks drop their regenerated tables."""
    return _cache.results_dir()


def write_result(name: str, text: str) -> Path:
    """Persist one experiment's table; returns the path written."""
    path = results_dir() / f"{name}.txt"
    path.write_text(text + "\n")
    return path


def gbps(value_bps: float) -> float:
    return value_bps / 1e9


def fmt_gbps(value_bps: float) -> str:
    return f"{value_bps / 1e9:.2f}"
