"""Shared experiment plumbing: scaling, tables, result files."""

from __future__ import annotations

import os
from pathlib import Path
from typing import List, Sequence

#: environment variable selecting run scale
SCALE_ENV = "REPRO_SCALE"


def scale() -> str:
    """``"quick"`` (default) or ``"full"`` — from ``REPRO_SCALE``."""
    value = os.environ.get(SCALE_ENV, "quick").lower()
    if value not in ("quick", "full"):
        raise ValueError(f"{SCALE_ENV} must be 'quick' or 'full', got {value!r}")
    return value


def pick(quick_value, full_value):
    """Choose a knob by run scale."""
    return full_value if scale() == "full" else quick_value


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Monospace table matching the style used in EXPERIMENTS.md."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[col]) for row in cells) for col in range(len(headers))]
    lines = []
    for index, row in enumerate(cells):
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def results_dir() -> Path:
    """Directory where benchmarks drop their regenerated tables."""
    root = Path(os.environ.get("REPRO_RESULTS_DIR", "results"))
    root.mkdir(parents=True, exist_ok=True)
    return root


def write_result(name: str, text: str) -> Path:
    """Persist one experiment's table; returns the path written."""
    path = results_dir() / f"{name}.txt"
    path.write_text(text + "\n")
    return path


def gbps(value_bps: float) -> float:
    return value_bps / 1e9


def fmt_gbps(value_bps: float) -> str:
    return f"{value_bps / 1e9:.2f}"


def seeds_for(repetitions: int, base: int = 1000) -> List[int]:
    """Deterministic, well-spread seeds for repeated runs."""
    return [base + 7919 * rep for rep in range(repetitions)]
