"""Shared experiment plumbing over :mod:`repro.runner`.

The scale/seed policy, table rendering and results directory live in
the runner layer (``repro.runner.scale`` / ``repro.runner.results`` /
``repro.runner.cache``); use those directly for new code.  The
PR-1-era ``pick``/``seeds_for`` deprecation shims are gone — import
:mod:`repro.runner.scale` instead.  What remains here is the small
experiment-side surface: the results directory, table writing, and
Gbps formatting.
"""

from __future__ import annotations

from pathlib import Path

from repro.runner import cache as _cache
from repro.runner import scale as _scale
from repro.runner.results import format_table  # noqa: F401  (re-export)

#: environment variable selecting run scale (re-export)
SCALE_ENV = _scale.SCALE_ENV


def scale() -> str:
    """Alias for :func:`repro.runner.scale.scale`."""
    return _scale.scale()


def results_dir() -> Path:
    """Directory where benchmarks drop their regenerated tables."""
    return _cache.results_dir()


def write_result(name: str, text: str) -> Path:
    """Persist one experiment's table; returns the path written."""
    path = results_dir() / f"{name}.txt"
    path.write_text(text + "\n")
    return path


def gbps(value_bps: float) -> float:
    return value_bps / 1e9


def fmt_gbps(value_bps: float) -> str:
    return f"{value_bps / 1e9:.2f}"
