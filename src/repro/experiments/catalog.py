"""The experiment catalog: every reproducible figure/table, registered.

Importing this module populates :data:`repro.runner.REGISTRY` with one
entry per paper artifact, plus :data:`repro.runner.SCENARIOS` with the
named scenarios the telemetry commands (``python -m repro trace`` /
``profile``) operate on.  Each runner is a zero-argument callable
returning the rendered table; heavyweight imports stay inside the
runners so ``python -m repro list`` stays fast.
"""

from __future__ import annotations

from repro.runner import experiment
from repro.runner.registry import scenario
from repro.runner.results import format_table


@experiment("fig01", "TCP vs RDMA throughput / CPU / latency")
def fig01() -> str:
    from repro.hoststack.model import RdmaStackModel, TcpStackModel, compare_stacks

    rows = [
        [
            str(size),
            f"{row.tcp_throughput_gbps:.1f}",
            f"{row.tcp_cpu_pct:.0f}",
            f"{row.rdma_throughput_gbps:.1f}",
            f"{row.rdma_client_cpu_pct:.2f}",
        ]
        for size, row in compare_stacks().items()
    ]
    table = format_table(
        ["bytes", "TCP Gbps", "TCP CPU%", "RDMA Gbps", "RDMA cli CPU%"], rows
    )
    tcp, rdma = TcpStackModel(), RdmaStackModel()
    return (
        table
        + f"\nlatency (2KB): TCP {tcp.latency_us():.1f} us, RDMA write "
        f"{rdma.latency_us():.2f} us, RDMA send "
        f"{rdma.latency_us(operation='send'):.2f} us"
    )


@experiment("fig03", "PFC parking-lot unfairness")
def fig03() -> str:
    from repro.experiments.pfc_pathologies import run_unfairness

    return run_unfairness("none").table()


@experiment("fig04", "PFC victim flow")
def fig04() -> str:
    from repro.experiments.pfc_pathologies import run_victim_flow

    return run_victim_flow("none").table()


@experiment("fig08", "DCQCN fixes the unfairness")
def fig08() -> str:
    from repro.experiments.pfc_pathologies import run_unfairness

    return run_unfairness("dcqcn").table()


@experiment("fig09", "DCQCN rescues the victim")
def fig09() -> str:
    from repro.experiments.pfc_pathologies import run_victim_flow

    return run_victim_flow("dcqcn").table()


@experiment("fig10", "fluid model vs packet simulator")
def fig10() -> str:
    from repro.experiments.fluid_validation import run_fluid_vs_sim

    result = run_fluid_vs_sim()
    return (
        result.table()
        + f"\ncorrelation {result.correlation():.3f}, "
        f"normalized RMSE {result.normalized_rmse():.3f}"
    )


@experiment("fig11", "parameter sweeps for convergence")
def fig11() -> str:
    from repro.experiments.sweeps import fig11_table, run_fig11

    return "\n\n".join(
        f"-- {panel} --\n" + fig11_table(panel, result)
        for panel, result in run_fig11().items()
    )


@experiment("fig12", "g sweep: queue length and stability")
def fig12() -> str:
    from repro.experiments.sweeps import run_fig12

    return run_fig12().table()


@experiment("fig13", "parameter validation on the simulator")
def fig13() -> str:
    from repro.experiments.fluid_validation import run_all_validations

    rows = [
        [
            name,
            f"{res.mean_rate_gbps[0]:.1f}",
            f"{res.mean_rate_gbps[1]:.1f}",
            f"{res.rate_gap_gbps:.2f}",
        ]
        for name, res in run_all_validations().items()
    ]
    return format_table(["config", "flow1 Gbps", "flow2 Gbps", "gap"], rows)


@experiment("tab14", "deployed parameter values")
def tab14() -> str:
    from repro.core.params import DCQCNParams

    params = DCQCNParams.deployed()
    rows = [
        ["timer", f"{params.rate_increase_timer_ns / 1e3:.0f} us"],
        ["byte counter", f"{params.byte_counter_bytes / 1e6:.0f} MB"],
        ["Kmax", f"{params.kmax_bytes / 1e3:.0f} KB"],
        ["Kmin", f"{params.kmin_bytes / 1e3:.0f} KB"],
        ["Pmax", f"{params.pmax:.0%}"],
        ["g", f"1/{round(1 / params.g)}"],
    ]
    return format_table(["parameter", "value"], rows)


@experiment("fig15", "PAUSE frames at the spines")
def fig15() -> str:
    from repro.experiments.benchmark_traffic import run_benchmark_traffic

    rows = []
    for variant in ("none", "dcqcn"):
        result = run_benchmark_traffic(variant, incast_degree=10)
        rows.append([variant, result.total_spine_pauses()])
    return format_table(["variant", "spine PAUSE frames"], rows)


@experiment("fig16", "benchmark traffic vs incast degree")
def fig16() -> str:
    from repro.experiments.benchmark_traffic import fig16_table, run_fig16
    from repro.runner import scale

    degrees = scale.pick((2, 6, 10), (2, 4, 6, 8, 10), (2, 6))
    return fig16_table(run_fig16(degrees=degrees))


@experiment("fig17", "16x user load comparison")
def fig17() -> str:
    from repro.experiments.benchmark_traffic import RESULT_HEADERS, run_fig17

    results = run_fig17()
    return format_table(RESULT_HEADERS, [r.row() for r in results.values()])


@experiment("fig18", "need for PFC and correct thresholds")
def fig18() -> str:
    from repro.experiments.benchmark_traffic import RESULT_HEADERS, run_fig18

    return format_table(RESULT_HEADERS, [r.row() for r in run_fig18().values()])


@experiment("fig19", "queue length: DCQCN vs DCTCP")
def fig19() -> str:
    from repro.experiments.latency import QUEUE_HEADERS, run_fig19

    return format_table(QUEUE_HEADERS, [r.row() for r in run_fig19()])


@experiment("fig20", "multi-bottleneck marking comparison")
def fig20() -> str:
    from repro.experiments.multibottleneck import PARKING_HEADERS, run_fig20

    return format_table(PARKING_HEADERS, [r.row() for r in run_fig20()])


@experiment("sec4", "buffer threshold calculations")
def sec4() -> str:
    from repro.experiments.buffer_settings import section4_table

    return section4_table()


@experiment("sec61", "K:1 incast utilization sweep")
def sec61() -> str:
    from repro.experiments.microbench import INCAST_HEADERS, run_incast_sweep
    from repro.runner import scale

    degrees = scale.pick((2, 4, 8, 16, 19), (2, 4, 8, 16, 19), (2, 4))
    return format_table(INCAST_HEADERS, [r.row() for r in run_incast_sweep(degrees)])


@experiment("sec7", "non-congestion loss sensitivity")
def sec7() -> str:
    from repro.experiments.link_errors import LOSS_HEADERS, run_loss_sweep

    return format_table(LOSS_HEADERS, [r.row() for r in run_loss_sweep()])


@experiment("microbench", "K:1 incast utilization sweep (alias of sec61)")
def microbench() -> str:
    return sec61()


@experiment("arena", "CC tournament: every controller x {incast, victim, multibottleneck}")
def arena() -> str:
    from repro.experiments.arena import run_arena

    return run_arena().table()


@experiment("fct", "benchmark-traffic FCT slowdown, mice vs elephants")
def fct_benchmark() -> str:
    from repro.analysis.fct import fct_table
    from repro.experiments.fct_grid import run_benchmark_fct

    runs, summaries = run_benchmark_fct()
    transfers = sum(len(run.flow_stats) for run in runs)
    return (
        fct_table(summaries)
        + f"\n{transfers} flow_stats rows over {len(runs)} repetitions"
    )


@experiment("fctgrid", "(Kmin, Kmax, Pmax) x incast grid, scored on slowdown")
def fctgrid() -> str:
    from repro.experiments.fct_grid import grid_table, run_fct_grid

    return grid_table(run_fct_grid())


@experiment("fabric", "DCQCN incast across fat-tree sizes (k=4, k=8)")
def fabric() -> str:
    from repro.experiments.fabric_scale import run_fabric

    return run_fabric()


@experiment("fabric1024", "1024-host fat-tree incast with invariants")
def fabric1024() -> str:
    from repro.experiments.fabric_scale import run_fabric_1024

    return run_fabric_1024()


@experiment("chaos", "scripted fault injection: PAUSE storms, flaps, recovery")
def chaos() -> str:
    from repro.experiments.chaos import run_chaos
    from repro.experiments.pfc_pathologies import run_pause_storm

    storm = run_pause_storm()
    sweep = run_chaos()
    return (
        "-- scripted PAUSE storm: cascade with and without DCQCN --\n"
        + storm.table()
        + "\n\n-- fault intensity sweep (storm + trunk flap, DCQCN) --\n"
        + sweep.table()
    )


# --- named scenarios (python -m repro trace/profile <id>) ------------------


@scenario("smoke", "2-to-1 DCQCN incast on one switch (2 ms)")
def smoke_scenario():
    from repro import units
    from repro.runner import FlowSpec, Scenario

    return Scenario(
        topology="single_switch",
        topology_kwargs={"n_hosts": 3},
        flows=(
            FlowSpec(name="f0", src="0", dst="2", cc="dcqcn"),
            FlowSpec(name="f1", src="1", dst="2", cc="dcqcn"),
        ),
        duration_ns=units.ms(2),
        label="smoke",
    )


@scenario("unfairness", "Figure 3: PFC parking-lot unfairness, no CC")
def unfairness_pfc_scenario():
    from repro.experiments.pfc_pathologies import unfairness_scenario

    return unfairness_scenario("none")


@scenario("unfairness-dcqcn", "Figure 8: the unfairness scenario with DCQCN")
def unfairness_dcqcn_scenario():
    from repro.experiments.pfc_pathologies import unfairness_scenario

    return unfairness_scenario("dcqcn")


@scenario("victim", "Figure 4: PFC victim flow (2 extra T3 senders)")
def victim_flow_scenario():
    from repro import units
    from repro.experiments.pfc_pathologies import victim_scenario
    from repro.runner import scale

    return victim_scenario(
        "none",
        t3_senders=2,
        duration_ns=scale.pick(units.ms(10), units.ms(30), units.ms(2)),
        warmup_ns=0,
    )


@scenario("storm", "dumbbell feeder+victim, no built-in faults (use --faults)")
def storm_scenario():
    from repro.experiments.pfc_pathologies import pause_storm_scenario

    # no plan baked in: this is the canvas for ``--faults plan.json``
    return pause_storm_scenario("none", with_storm=False)


@scenario("storm-dcqcn", "the storm scenario with a scripted PAUSE storm + DCQCN")
def storm_dcqcn_scenario():
    from repro.experiments.pfc_pathologies import pause_storm_scenario

    return pause_storm_scenario("dcqcn")


@scenario("chaos-mid", "mid-intensity storm+flap chaos run (the CI invariant gate)")
def chaos_named_scenario():
    from repro.experiments.chaos import chaos_scenario

    return chaos_scenario(0.5)


@scenario(
    "chaos-shard",
    "k=4 fat-tree incast under storm + boundary faults (shardable)",
)
def chaos_shard_scenario():
    from repro.experiments.chaos import chaos_fabric_scenario

    return chaos_fabric_scenario(0.5)


@scenario("benchmark", "Fig 16 benchmark traffic: user message streams + incast")
def benchmark_named_scenario():
    from repro.experiments.fct_grid import benchmark_scenario

    return benchmark_scenario()


@scenario("fabric-smoke", "k=4 fat-tree (16 hosts): incast + probes")
def fabric_smoke_scenario():
    from repro.experiments.fabric_scale import fabric_incast_scenario

    return fabric_incast_scenario(k=4)


@scenario("fabric-k8", "k=8 fat-tree (128 hosts): incast + probes")
def fabric_k8_scenario():
    from repro.experiments.fabric_scale import fabric_incast_scenario

    return fabric_incast_scenario(k=8)


@scenario("fabric-bench", "k=8 fat-tree benchmark: heavy-tailed streams + incast")
def fabric_bench_scenario():
    from repro.experiments.fabric_scale import fabric_benchmark_scenario

    return fabric_benchmark_scenario()


@scenario("fabric-1024", "k=16 fat-tree (1024 hosts): 32:1 incast, invariants on")
def fabric_1024_scenario():
    from repro.experiments.fabric_scale import thousand_host_scenario

    return thousand_host_scenario()
