"""One module per paper experiment (see DESIGN.md's experiment index).

Every experiment is a plain function returning a structured result
dataclass; the ``benchmarks/`` tree wraps these in pytest-benchmark
harnesses and prints the paper-figure tables, and ``examples/`` reuses
them for runnable demos.

Durations are scaled relative to the testbed (minutes -> tens of
simulated milliseconds); set ``REPRO_SCALE=full`` for longer runs and
more repetitions.
"""

from repro.experiments import common

__all__ = ["common"]
