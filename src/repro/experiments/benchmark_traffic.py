"""Benchmark traffic on the Clos testbed (Figures 15-18, paper §6.2).

The scenario models a cloud-storage backend: steady user traffic (a
fixed number of communicating pairs replaying a trace-derived flow
size distribution) plus a disk-rebuild event (K:1 incast of bulk
data).  Four fabric configurations are compared:

* ``"none"``               — PFC only, no end-to-end congestion control
* ``"dcqcn"``              — DCQCN with correct (dynamic) buffer thresholds
* ``"dcqcn_no_pfc"``       — DCQCN with PFC disabled: flows start at line
                             rate, so congestion now *drops* packets
* ``"dcqcn_misconfigured"``— DCQCN with PFC, but a static t_PFC at its
                             upper bound and t_ECN five times larger,
                             so PAUSE fires before ECN can

Metrics follow the paper: median and 10th-percentile goodput of user
pairs and of incast senders, plus the number of PAUSE frames received
at the spine switches (Figure 15).

Every (configuration, repetition) is one executor cell, and the
figure-level drivers flatten *all* their cells into a single
:func:`repro.runner.execute` call, so an entire figure fans out across
cores at once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro import units
from repro.analysis.stats import percentile
from repro.core.params import DCQCNParams
from repro.experiments import common
from repro.runner import Cell, execute
from repro.runner import scale
from repro.sim.switch import SwitchConfig
from repro.traffic.distributions import FlowSizeDistribution

VARIANTS = ("none", "dcqcn", "dcqcn_no_pfc", "dcqcn_misconfigured")


def variant_setup(variant: str) -> tuple:
    """(cc, SwitchConfig) for a named fabric configuration."""
    deployed = DCQCNParams.deployed()
    if variant == "none":
        return "none", SwitchConfig(marking=deployed)
    if variant == "dcqcn":
        return "dcqcn", SwitchConfig(marking=deployed)
    if variant == "dcqcn_no_pfc":
        return "dcqcn", SwitchConfig(pfc_mode="off", marking=deployed)
    if variant == "dcqcn_misconfigured":
        # static t_PFC at its upper bound, ECN threshold 5x higher:
        # PFC is guaranteed to fire first (paper Figure 18).
        misconfigured = deployed.with_red_marking(
            kmin_bytes=units.kb(122), kmax_bytes=units.kb(200), pmax=0.01
        )
        return "dcqcn", SwitchConfig(
            pfc_mode="static",
            t_pfc_static_bytes=units.kb(24.47),
            marking=misconfigured,
        )
    raise ValueError(f"unknown variant {variant!r}; choose from {VARIANTS}")


@dataclass
class BenchmarkTrafficResult:
    """Aggregated metrics for one (variant, incast degree, #pairs)."""

    variant: str
    incast_degree: int
    n_pairs: int
    repetitions: int
    measure_ms: float
    user_bps: List[float] = field(default_factory=list)
    incast_bps: List[float] = field(default_factory=list)
    spine_pause_frames: List[int] = field(default_factory=list)
    dropped_packets: List[int] = field(default_factory=list)

    def user_median_gbps(self) -> float:
        return percentile(self.user_bps, 50) / 1e9

    def user_p10_gbps(self) -> float:
        return percentile(self.user_bps, 10) / 1e9

    def incast_median_gbps(self) -> float:
        return percentile(self.incast_bps, 50) / 1e9

    def incast_p10_gbps(self) -> float:
        return percentile(self.incast_bps, 10) / 1e9

    def total_spine_pauses(self) -> int:
        return sum(self.spine_pause_frames)

    def row(self) -> List[str]:
        return [
            self.variant,
            str(self.incast_degree),
            str(self.n_pairs),
            f"{self.user_median_gbps():.2f}",
            f"{self.user_p10_gbps():.2f}",
            f"{self.incast_median_gbps():.2f}",
            f"{self.incast_p10_gbps():.2f}",
            str(self.total_spine_pauses()),
            str(sum(self.dropped_packets)),
        ]


RESULT_HEADERS = [
    "variant",
    "incast",
    "pairs",
    "user med Gbps",
    "user p10 Gbps",
    "incast med Gbps",
    "incast p10 Gbps",
    "spine PAUSE",
    "drops",
]


def traffic_cell(
    variant: str,
    incast_degree: int,
    n_pairs: int,
    warmup_ns: int,
    measure_ns: int,
    hosts_per_tor: int,
    fresh_qp_per_message: bool,
    seed: int,
    distribution: Optional[FlowSizeDistribution] = None,
) -> Dict[str, Any]:
    """One (configuration, repetition) — the worker-side entry point.

    ``distribution`` is only passed on the in-process path (a custom
    distribution is not JSON-serializable); worker cells always replay
    the default storage-cluster trace.
    """
    from repro.sim.topology import three_tier_clos
    from repro.traffic.distributions import storage_cluster
    from repro.traffic.workload import (
        IncastWorkload,
        UserTrafficWorkload,
        pick_incast_participants,
    )

    cc, switch_config = variant_setup(variant)
    distribution = distribution or storage_cluster()
    spec = three_tier_clos(
        hosts_per_tor=hosts_per_tor, seed=seed, switch_config=switch_config
    )
    hosts = spec.all_hosts()
    receiver, senders = pick_incast_participants(
        hosts, incast_degree, spec.net.rng
    )
    incast = IncastWorkload(spec.net, receiver, senders, cc=cc)
    users = UserTrafficWorkload(
        spec.net,
        hosts,
        n_pairs,
        distribution=distribution,
        cc=cc,
        seed=seed + 1,
        exclude=[receiver],
        fresh_qp_per_message=fresh_qp_per_message,
    )
    users.start()
    spec.net.run_for(warmup_ns)
    user_before = [pair.flow.bytes_delivered for pair in users.pairs]
    incast_before = [flow.bytes_delivered for flow in incast.flows]
    pauses_before = spec.spine_pause_frames()
    spec.net.run_for(measure_ns)
    return {
        "user_bps": [
            (pair.flow.bytes_delivered - before) * 8e9 / measure_ns
            for pair, before in zip(users.pairs, user_before)
        ],
        "incast_bps": [
            (flow.bytes_delivered - before) * 8e9 / measure_ns
            for flow, before in zip(incast.flows, incast_before)
        ],
        "spine_pause_frames": spec.spine_pause_frames() - pauses_before,
        # drops are reported for the whole run (warmup included): the
        # no-PFC variant's losses cluster around transfer starts
        "dropped_packets": spec.net.total_drops(),
    }


_CELL_FN = "repro.experiments.benchmark_traffic:traffic_cell"


def _plan(
    variant: str,
    incast_degree: int,
    n_pairs: int = 20,
    repetitions: Optional[int] = None,
    warmup_ns: Optional[int] = None,
    measure_ns: Optional[int] = None,
    hosts_per_tor: int = 5,
    distribution: Optional[FlowSizeDistribution] = None,
    mtu_bytes: int = 1000,
    fresh_qp_per_message: bool = False,
) -> Dict[str, Any]:
    """Resolve defaults into one configuration's list of cell kwargs."""
    cc, _ = variant_setup(variant)
    repetitions = repetitions or scale.pick(1, 5, 1)
    warmup_ns = (
        warmup_ns
        if warmup_ns is not None
        else (
            scale.pick(units.ms(8), units.ms(20), units.ms(3))
            if cc == "dcqcn"
            else units.ms(2)
        )
    )
    measure_ns = measure_ns or scale.pick(units.ms(8), units.ms(30), units.ms(2))
    cell_kwargs = [
        {
            "variant": variant,
            "incast_degree": incast_degree,
            "n_pairs": n_pairs,
            "warmup_ns": warmup_ns,
            "measure_ns": measure_ns,
            "hosts_per_tor": hosts_per_tor,
            "fresh_qp_per_message": fresh_qp_per_message,
            "seed": seed,
        }
        for seed in scale.seeds_for(repetitions, base=5000 + incast_degree * 17)
    ]
    return {
        "variant": variant,
        "incast_degree": incast_degree,
        "n_pairs": n_pairs,
        "repetitions": repetitions,
        "measure_ns": measure_ns,
        "distribution": distribution,
        "cell_kwargs": cell_kwargs,
    }


def _aggregate(plan: Dict[str, Any], values: List[Dict[str, Any]]) -> BenchmarkTrafficResult:
    result = BenchmarkTrafficResult(
        variant=plan["variant"],
        incast_degree=plan["incast_degree"],
        n_pairs=plan["n_pairs"],
        repetitions=plan["repetitions"],
        measure_ms=plan["measure_ns"] / 1e6,
    )
    for value in values:
        result.user_bps.extend(value["user_bps"])
        result.incast_bps.extend(value["incast_bps"])
        result.spine_pause_frames.append(value["spine_pause_frames"])
        result.dropped_packets.append(value["dropped_packets"])
    return result


def _run_plans(plans: List[Dict[str, Any]]) -> List[BenchmarkTrafficResult]:
    """Execute every plan's cells through ONE executor fan-out.

    Plans carrying a custom (non-serializable) distribution run their
    cells in-process and bypass the cache.
    """
    flat = [
        Cell(_CELL_FN, kwargs)
        for plan in plans
        if plan["distribution"] is None
        for kwargs in plan["cell_kwargs"]
    ]
    values = iter(execute(flat) if flat else [])
    results = []
    for plan in plans:
        if plan["distribution"] is None:
            plan_values = [next(values) for _ in plan["cell_kwargs"]]
        else:
            plan_values = [
                traffic_cell(distribution=plan["distribution"], **kwargs)
                for kwargs in plan["cell_kwargs"]
            ]
        results.append(_aggregate(plan, plan_values))
    return results


def run_benchmark_traffic(
    variant: str,
    incast_degree: int,
    **kwargs,
) -> BenchmarkTrafficResult:
    """One cell of Figures 15-18.

    Each repetition rebuilds the Clos fabric with a fresh seed (new
    ECMP placement, new random pairs and incast participants), runs
    ``warmup + measure`` of simulated time and accounts goodput over
    the measurement window only.
    """
    (result,) = _run_plans([_plan(variant, incast_degree, **kwargs)])
    return result


def run_fig16(
    degrees: Sequence[int] = (2, 4, 6, 8, 10),
    variants: Sequence[str] = ("none", "dcqcn"),
    **kwargs,
) -> Dict[str, Dict[int, BenchmarkTrafficResult]]:
    """Figure 16: user/incast throughput vs incast degree."""
    plans = [
        _plan(variant, degree, **kwargs)
        for variant in variants
        for degree in degrees
    ]
    results = iter(_run_plans(plans))
    return {
        variant: {degree: next(results) for degree in degrees}
        for variant in variants
    }


def fig16_table(results: Dict[str, Dict[int, BenchmarkTrafficResult]]) -> str:
    rows = []
    for variant, by_degree in results.items():
        for degree in sorted(by_degree):
            rows.append(by_degree[degree].row())
    return common.format_table(RESULT_HEADERS, rows)


def run_fig17(
    pair_counts: Sequence[int] = (5, 80),
    incast_degree: int = 10,
    **kwargs,
) -> Dict[str, BenchmarkTrafficResult]:
    """Figure 17: "16x more user traffic".

    5 pairs without DCQCN vs 16x as many (80) pairs with DCQCN; the
    paper shows the CDFs match, i.e. DCQCN carries 16x the user load
    at the same per-pair performance.
    """
    low, high = pair_counts
    none_result, dcqcn_result = _run_plans([
        _plan("none", incast_degree, n_pairs=low, **kwargs),
        _plan("dcqcn", incast_degree, n_pairs=high, **kwargs),
    ])
    return {
        f"none_{low}pairs": none_result,
        f"dcqcn_{high}pairs": dcqcn_result,
    }


def run_fig18(
    incast_degree: int = 8,
    variants: Sequence[str] = VARIANTS,
    **kwargs,
) -> Dict[str, BenchmarkTrafficResult]:
    """Figure 18: why PFC and correct thresholds are both needed.

    User transfers run as fresh queue pairs (line-rate start per
    message): with DCQCN but no PFC, every transfer start is a
    loss event and go-back-N recovery caps the tails — exactly the
    paper's "DCQCN does not obviate the need for PFC".
    """
    kwargs.setdefault("fresh_qp_per_message", True)
    plans = [_plan(variant, incast_degree, **kwargs) for variant in variants]
    return dict(zip(variants, _run_plans(plans)))
