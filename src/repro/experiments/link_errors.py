"""Non-congestion packet losses (paper §7 discussion).

The paper closes by noting that DCQCN assumes losses are congestion
losses prevented by PFC; *non-congestion* losses (bad optics, CRC
errors) interact badly with the NICs' go-back-N recovery: one lost
frame forces the sender to rewind and retransmit everything in flight,
so goodput collapses at loss rates that would barely dent a SACK-style
transport.

This experiment injects a per-frame error probability on the host's
access link and measures goodput versus loss rate.  An idealized
"selective repeat" upper bound (goodput = line rate x (1 - p)) is
printed alongside, making the go-back-N penalty visible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro import units
from repro.experiments import common
from repro.runner import Cell, execute
from repro.runner import scale


@dataclass
class LossSweepPoint:
    """Goodput at one injected loss rate."""

    loss_rate: float
    goodput_gbps: float
    ideal_selective_gbps: float
    retransmitted_packets: int
    rto_fires: int

    @property
    def efficiency(self) -> float:
        """Goodput relative to the loss-free ideal."""
        return self.goodput_gbps / 40.0

    def row(self) -> List[str]:
        return [
            f"{self.loss_rate:.2%}",
            f"{self.goodput_gbps:.2f}",
            f"{self.ideal_selective_gbps:.2f}",
            str(self.retransmitted_packets),
            str(self.rto_fires),
        ]


LOSS_HEADERS = [
    "loss rate",
    "go-back-N Gbps",
    "selective-repeat bound Gbps",
    "retransmits",
    "RTO fires",
]


def loss_cell(
    loss_rate: float,
    duration_ns: int,
    rto_ns: int,
    seed: int,
) -> Dict[str, Any]:
    """One greedy flow through a lossy access link — worker entry point."""
    from repro.runner.scale import derive_seed
    from repro.sim.nic import NicConfig
    from repro.sim.topology import single_switch

    net, switch, hosts = single_switch(
        3, seed=seed, nic_config=NicConfig(rto_ns=rto_ns)
    )
    sender, receiver = hosts[0], hosts[2]
    # corrupt frames on the switch->receiver hop (data direction only;
    # ACKs/NACKs ride the clean reverse hop).  The error RNG gets its
    # own derived stream so it can never alias another consumer of the
    # run seed (the old ``seed + 1`` collided with the next base seed).
    switch.port_to(receiver.nic).set_error_rate(
        loss_rate, seed=derive_seed(seed, "link_errors.access_link")
    )
    flow = net.add_flow(sender, receiver, cc="dcqcn")
    flow.set_greedy()
    net.run_for(duration_ns)
    goodput = flow.bytes_delivered * 8e9 / duration_ns / 1e9
    return {
        "loss_rate": loss_rate,
        "goodput_gbps": goodput,
        "ideal_selective_gbps": 40.0 * (1.0 - loss_rate),
        "retransmitted_packets": flow.retransmitted_packets,
        "rto_fires": sender.nic.rto_fires,
    }


_CELL_FN = "repro.experiments.link_errors:loss_cell"


def _cell_kwargs(
    loss_rate: float,
    duration_ns: Optional[int],
    rto_ns: int,
    seed: int,
) -> Dict[str, Any]:
    duration_ns = duration_ns or scale.pick(units.ms(10), units.ms(30), units.ms(2))
    return {
        "loss_rate": loss_rate,
        "duration_ns": duration_ns,
        "rto_ns": rto_ns,
        "seed": seed,
    }


def run_loss_point(
    loss_rate: float,
    duration_ns: Optional[int] = None,
    rto_ns: int = units.ms(1),
    seed: int = 97,
) -> LossSweepPoint:
    """One greedy flow through a lossy access link."""
    kwargs = _cell_kwargs(loss_rate, duration_ns, rto_ns, seed)
    (value,) = execute([Cell(_CELL_FN, kwargs)])
    return LossSweepPoint(**value)


def run_loss_sweep(
    loss_rates: Sequence[float] = (0.0, 1e-4, 1e-3, 0.01, 0.05),
    **kwargs,
) -> List[LossSweepPoint]:
    """Goodput vs injected loss rate (the §7 sensitivity), fanned out."""
    cells = [
        Cell(_CELL_FN, _cell_kwargs(
            rate,
            kwargs.get("duration_ns"),
            kwargs.get("rto_ns", units.ms(1)),
            kwargs.get("seed", 97),
        ))
        for rate in loss_rates
    ]
    return [LossSweepPoint(**value) for value in execute(cells)]
