"""NP algorithm — CNP generation at the receiving NIC.

Paper §3.1 / Figure 6: "If a marked packet arrives for a flow, and no
CNP has been sent for the flow in the last N microseconds, a CNP is
sent immediately.  Then, the NIC generates at most one CNP packet every
N microseconds for the flow, if any packet that arrives within that
time window was marked."

The deployment uses ``N = 50 µs`` — the ConnectX-3 Pro CNP generation
limit (one CNP per 1–5 µs overall, shared across flows; the per-flow
window keeps the aggregate load feasible for 10–20 congested flows).
"""

from __future__ import annotations

from typing import Callable


class NotificationPoint:
    """Per-flow CNP pacing state.

    Parameters
    ----------
    cnp_interval_ns:
        The window ``N``.
    send_cnp:
        Callback invoked (with no arguments) when a CNP must be emitted
        for this flow; the NIC wires this to its transmit path.
    """

    __slots__ = ("cnp_interval_ns", "_send_cnp", "_last_cnp_ns", "cnps_sent", "marked_seen")

    def __init__(self, cnp_interval_ns: int, send_cnp: Callable[[], None]):
        if cnp_interval_ns <= 0:
            raise ValueError("cnp_interval_ns must be positive")
        self.cnp_interval_ns = cnp_interval_ns
        self._send_cnp = send_cnp
        self._last_cnp_ns = -(1 << 62)  # "never"
        self.cnps_sent = 0
        self.marked_seen = 0

    def on_data_packet(self, now_ns: int, ce_marked: bool) -> bool:
        """Process one arriving data packet; returns True if a CNP fired.

        Unmarked packets generate no feedback ("no CNPs are generated
        in the common case of no congestion").
        """
        if not ce_marked:
            return False
        self.marked_seen += 1
        if now_ns - self._last_cnp_ns < self.cnp_interval_ns:
            return False
        self._last_cnp_ns = now_ns
        self.cnps_sent += 1
        self._send_cnp()
        return True
