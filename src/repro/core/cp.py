"""CP algorithm — RED-style ECN marking at the switch egress queue.

Paper §3.1: "At an egress queue, an arriving packet is ECN-marked if
the queue length exceeds a threshold.  This is accomplished using RED
functionality supported on all modern switches."  Figure 5 defines the
profile: probability 0 below ``Kmin``, rising linearly to ``Pmax`` at
``Kmax``, and 1 above ``Kmax``.  Marking uses the *instantaneous*
queue length, as DCTCP recommends (weighted averaging off).
"""

from __future__ import annotations

import random
from typing import Optional

from repro.core.params import DCQCNParams


def marking_probability(
    queue_bytes: float, kmin_bytes: float, kmax_bytes: float, pmax: float
) -> float:
    """Equation (5): RED marking probability for a given queue length.

    ``kmin == kmax`` yields DCTCP-style cut-off behaviour (0 below the
    threshold, 1 above — ``pmax`` is unreachable in the degenerate
    linear segment, matching "set Kmin = Kmax = K and Pmax = 1").
    """
    if queue_bytes <= kmin_bytes:
        return 0.0
    if queue_bytes > kmax_bytes:
        return 1.0
    # kmin < q <= kmax on a non-degenerate segment
    if kmax_bytes == kmin_bytes:
        return 1.0
    return (queue_bytes - kmin_bytes) / (kmax_bytes - kmin_bytes) * pmax


class RedEcnMarker:
    """Stateful marker bound to one egress queue.

    Keeps its own ``random.Random`` stream so that switch marking
    decisions are reproducible independently of any other randomness in
    the simulation.
    """

    __slots__ = ("kmin_bytes", "kmax_bytes", "pmax", "_rng", "marked", "seen")

    def __init__(
        self,
        params: DCQCNParams,
        seed: Optional[int] = None,
    ):
        self.kmin_bytes = params.kmin_bytes
        self.kmax_bytes = params.kmax_bytes
        self.pmax = params.pmax
        self._rng = random.Random(seed)
        self.marked = 0
        self.seen = 0

    def probability(self, queue_bytes: float) -> float:
        """Marking probability at the given instantaneous queue length."""
        return marking_probability(
            queue_bytes, self.kmin_bytes, self.kmax_bytes, self.pmax
        )

    def should_mark(self, queue_bytes: float) -> bool:
        """Roll the dice for one arriving packet."""
        self.seen += 1
        p = self.probability(queue_bytes)
        if p <= 0.0:
            return False
        if p >= 1.0:
            self.marked += 1
            return True
        if self._rng.random() < p:
            self.marked += 1
            return True
        return False

    @property
    def mark_fraction(self) -> float:
        """Fraction of observed packets that were marked."""
        if self.seen == 0:
            return 0.0
        return self.marked / self.seen
