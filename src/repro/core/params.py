"""DCQCN parameter sets.

``DCQCNParams.deployed()`` is the paper's Table 14 — the values chosen
via the fluid-model analysis of §5 and used in Microsoft's datacenters:

====================  ==========
rate-increase timer    55 µs
byte counter           10 MB
Kmax                   200 KB
Kmin                   5 KB
Pmax                   1 %
g                      1/256
====================  ==========

``DCQCNParams.strawman()`` is the §5.2 starting point taken verbatim
from the QCN and DCTCP specifications (byte counter 150 KB, timer
1.5 ms, cut-off marking at 40 KB, g = 1/16), which the paper shows
cannot converge to fairness.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro import units


@dataclass(frozen=True)
class DCQCNParams:
    """Every tunable of the DCQCN state machines.

    Attributes
    ----------
    kmin_bytes, kmax_bytes, pmax:
        CP (switch) RED-ECN marking profile — Figure 5.  Setting
        ``kmin == kmax`` and ``pmax = 1`` gives DCTCP-style cut-off
        marking.
    cnp_interval_ns:
        NP parameter ``N``: at most one CNP per flow per interval
        (50 µs in the deployment; a ConnectX-3 Pro hardware limit).
    alpha_timer_ns:
        RP parameter ``K``: with no CNP for this long, alpha decays by
        ``(1 - g)``.  Must exceed ``cnp_interval_ns`` (paper §3.1).
    g:
        EWMA gain of the alpha estimator (Equation 1).
    rate_increase_timer_ns:
        RP timer ``T`` driving time-based rate-increase events.
    byte_counter_bytes:
        RP byte counter ``B``: one rate-increase event per ``B`` bytes
        sent.
    fast_recovery_threshold:
        ``F``: number of byte-counter/timer iterations spent in fast
        recovery before additive increase begins (fixed at 5).
    rai_bps / rhai_bps:
        Additive and hyper rate-increase steps (40 / 400 Mbps).
    min_rate_bps:
        Floor for the current rate; hardware rate limiters cannot pace
        arbitrarily slowly.
    initial_alpha:
        Alpha before the first CNP (1.0 per Equation 1's footnote).
    """

    # CP — switch marking (Figure 5)
    kmin_bytes: int = units.kb(5)
    kmax_bytes: int = units.kb(200)
    pmax: float = 0.01
    # NP — CNP generation (Figure 6)
    cnp_interval_ns: int = units.us(50)
    # RP — rate computation (Figure 7 / Equations 1-4)
    alpha_timer_ns: int = units.us(55)
    g: float = 1.0 / 256.0
    rate_increase_timer_ns: int = units.us(55)
    #: uniform ± skew applied to each timer firing — NIC firmware
    #: timers are not phase-locked across flows, and modelling that
    #: skew is what keeps N synchronized flows from cutting and
    #: recovering in lockstep (see PeriodicTimer).
    rate_increase_timer_jitter_ns: int = units.us(4)
    byte_counter_bytes: int = units.mb(10)
    fast_recovery_threshold: int = 5
    rai_bps: float = units.mbps(40)
    rhai_bps: float = units.mbps(400)
    min_rate_bps: float = units.mbps(1)
    initial_alpha: float = 1.0

    def __post_init__(self) -> None:
        if self.kmin_bytes < 0 or self.kmax_bytes < self.kmin_bytes:
            raise ValueError(
                f"need 0 <= kmin <= kmax, got {self.kmin_bytes}, {self.kmax_bytes}"
            )
        if not 0.0 < self.pmax <= 1.0:
            raise ValueError(f"pmax must be in (0, 1], got {self.pmax}")
        if not 0.0 < self.g <= 1.0:
            raise ValueError(f"g must be in (0, 1], got {self.g}")
        if self.cnp_interval_ns <= 0:
            raise ValueError("cnp_interval_ns must be positive")
        if self.alpha_timer_ns < self.cnp_interval_ns:
            raise ValueError(
                "alpha timer K must be larger than the CNP generation "
                f"interval N ({self.alpha_timer_ns} < {self.cnp_interval_ns})"
            )
        if self.rate_increase_timer_ns < self.cnp_interval_ns:
            raise ValueError(
                "rate-increase timer cannot be smaller than the CNP "
                "generation interval (paper §5.2)"
            )
        if not 0 <= self.rate_increase_timer_jitter_ns < self.rate_increase_timer_ns:
            raise ValueError("timer jitter must be in [0, timer period)")
        if self.byte_counter_bytes <= 0:
            raise ValueError("byte counter must be positive")
        if self.fast_recovery_threshold < 1:
            raise ValueError("fast recovery threshold F must be >= 1")
        if min(self.rai_bps, self.rhai_bps, self.min_rate_bps) <= 0:
            raise ValueError("rate steps and min rate must be positive")
        if not 0.0 <= self.initial_alpha <= 1.0:
            raise ValueError(
                f"initial_alpha must be in [0, 1], got {self.initial_alpha}"
            )

    @classmethod
    def deployed(cls) -> "DCQCNParams":
        """Table 14 — the values used in the paper's datacenters."""
        return cls()

    @classmethod
    def strawman(cls) -> "DCQCNParams":
        """§5.2 starting point: QCN/DCTCP-recommended values.

        Cut-off marking at 40 KB (``kmin == kmax``, ``pmax = 1``), QCN
        byte counter of 150 KB with the 1.5 ms timer, and DCTCP's
        ``g = 1/16``.  The paper shows flows cannot converge to
        fairness with these settings (Figure 11a, Figure 13a).
        """
        return cls(
            kmin_bytes=units.kb(40),
            kmax_bytes=units.kb(40),
            pmax=1.0,
            g=1.0 / 16.0,
            rate_increase_timer_ns=units.ms(1.5),
            byte_counter_bytes=units.kb(150),
        )

    def with_cutoff_marking(self, threshold_bytes: int) -> "DCQCNParams":
        """DCTCP-like marking: mark everything above ``threshold_bytes``."""
        return replace(
            self,
            kmin_bytes=threshold_bytes,
            kmax_bytes=threshold_bytes,
            pmax=1.0,
        )

    def with_red_marking(
        self, kmin_bytes: int, kmax_bytes: int, pmax: float
    ) -> "DCQCNParams":
        """RED-like probabilistic marking profile (the deployed choice)."""
        return replace(
            self, kmin_bytes=kmin_bytes, kmax_bytes=kmax_bytes, pmax=pmax
        )
