"""DCQCN: the paper's primary contribution.

The algorithm has three components (paper §3.1):

* :mod:`repro.core.cp` — congestion point (switch): RED-style ECN
  marking on the egress queue.
* :mod:`repro.core.np` — notification point (receiving NIC): turns
  ECN-marked arrivals into Congestion Notification Packets, rate
  limited to one per flow per ``cnp_interval``.
* :mod:`repro.core.rp` — reaction point (sending NIC): DCTCP-style
  multiplicative decrease driven by CNPs plus QCN-style byte-counter /
  timer rate increase (fast recovery, additive increase, hyper
  increase).

:mod:`repro.core.params` carries the deployed parameter values
(paper Table 14) and the QCN/DCTCP "strawman" values that §5.2 shows
failing to converge.
"""

from repro.core.params import DCQCNParams
from repro.core.cp import RedEcnMarker, marking_probability
from repro.core.np import NotificationPoint
from repro.core.rp import ReactionPoint, RpPhase

__all__ = [
    "DCQCNParams",
    "RedEcnMarker",
    "marking_probability",
    "NotificationPoint",
    "ReactionPoint",
    "RpPhase",
]
