"""RP algorithm — per-flow rate computation at the sending NIC.

This is the heart of DCQCN (paper §3.1, Figure 7, Equations 1-4):

* On each CNP: remember the current rate as the target
  (``R_T = R_C``), cut multiplicatively (``R_C *= 1 - alpha/2``),
  bump the congestion estimate (``alpha = (1-g) alpha + g``), and reset
  the byte counter, the rate-increase timer and the alpha timer.
* With no CNP for ``K`` time units, decay ``alpha *= (1-g)``
  (Equation 2).  We implement this *lazily*: alpha is only consumed at
  cut time, so the pending decays can be applied exactly as
  ``floor(elapsed / K)`` multiplications without scheduling any events.
* Rate increases are driven by a byte counter (every ``B`` bytes sent)
  and a timer (every ``T`` time units), exactly as in QCN.  Each event
  increments its counter and triggers one step of Figure 7's state
  machine:

  - ``max(T, BC) < F``  → fast recovery: ``R_C = (R_T + R_C)/2``
  - ``min(T, BC) > F``  → hyper increase: ``R_T += R_HAI`` then average
  - otherwise           → additive increase: ``R_T += R_AI`` then average

There is **no slow start**: a flow starts at full line rate, and the RP
engages only after the first CNP.  Once both rates have recovered to
line rate the RP goes quiescent (no timer events), which both matches
hardware behaviour (the rate limiter is released) and keeps the
simulation cheap in the common uncongested case.
"""

from __future__ import annotations

import enum
from typing import Callable, Optional

from repro.core.params import DCQCNParams
from repro.engine import EventScheduler, PeriodicTimer


class RpPhase(enum.Enum):
    """Which Figure 7 branch the next increase event will take."""

    FAST_RECOVERY = "fast_recovery"
    ADDITIVE_INCREASE = "additive_increase"
    HYPER_INCREASE = "hyper_increase"


# Relative slack under line rate below which we snap R_C to line rate and
# let the RP go quiescent.
_LINE_RATE_SNAP = 1e-9


class ReactionPoint:
    """DCQCN sender state machine for one flow.

    Parameters
    ----------
    engine:
        Event scheduler (used for the rate-increase timer).
    params:
        Protocol constants, usually :meth:`DCQCNParams.deployed`.
    line_rate_bps:
        The NIC port speed; flows start here and never exceed it.
    on_rate_change:
        Optional callback ``fn(new_rate_bps)`` invoked whenever the
        current rate changes (the NIC re-paces the flow).
    """

    def __init__(
        self,
        engine: EventScheduler,
        params: DCQCNParams,
        line_rate_bps: float,
        on_rate_change: Optional[Callable[[float], None]] = None,
        timer_seed: Optional[int] = None,
        flow_id: int = -1,
        component: str = "rp",
    ):
        if line_rate_bps <= 0:
            raise ValueError("line_rate_bps must be positive")
        self.engine = engine
        self.params = params
        self.line_rate_bps = line_rate_bps
        self.on_rate_change = on_rate_change
        #: telemetry identity + bus (tracer is attached by the Network;
        #: None keeps the emit sites to a single identity test)
        self.flow_id = flow_id
        self.component = component
        self.tracer = None
        #: invariant guard (repro.invariants), attached by the Network;
        #: None keeps every update site to a single attribute test
        self.guard = None

        self.rc_bps = line_rate_bps  # current rate
        self.rt_bps = line_rate_bps  # target rate
        self._alpha = params.initial_alpha
        self._alpha_stamp_ns = 0  # when _alpha was last made exact
        self.byte_counter_count = 0  # "BC" in Figure 7
        self.timer_count = 0  # "T" in Figure 7
        self._bytes_toward_event = 0
        self._increase_timer = PeriodicTimer(
            engine,
            params.rate_increase_timer_ns,
            self._on_timer_event,
            jitter_ns=params.rate_increase_timer_jitter_ns,
            seed=timer_seed,
        )
        # statistics
        self.cnps_received = 0
        self.increase_events = 0

    # --- introspection ------------------------------------------------------

    @property
    def active(self) -> bool:
        """True while the flow is rate limited (below line rate)."""
        return self.rc_bps < self.line_rate_bps or self.rt_bps < self.line_rate_bps

    def current_alpha(self) -> float:
        """Alpha with all pending Equation-2 decays applied.

        While the RP is quiescent (line rate, limiter released) the
        estimator is not running and the *next* episode will restart
        from ``initial_alpha``, so that is what we report.
        """
        if not self.active:
            return self.params.initial_alpha
        self._apply_alpha_decay()
        return self._alpha

    @property
    def phase(self) -> RpPhase:
        """The Figure 7 branch the *next* increase event would take."""
        f = self.params.fast_recovery_threshold
        if max(self.timer_count, self.byte_counter_count) < f:
            return RpPhase.FAST_RECOVERY
        if min(self.timer_count, self.byte_counter_count) > f:
            return RpPhase.HYPER_INCREASE
        return RpPhase.ADDITIVE_INCREASE

    def reset_to_line_rate(self) -> None:
        """Forget all congestion state: the next transfer is a fresh QP.

        "When a flow starts, it sends at full line rate" — workloads
        that open a new queue pair per transfer (request/response
        storage traffic) call this between messages.
        """
        self.rc_bps = self.line_rate_bps
        self.rt_bps = self.line_rate_bps
        self._alpha = self.params.initial_alpha
        self._alpha_stamp_ns = self.engine.now
        self.byte_counter_count = 0
        self.timer_count = 0
        self._bytes_toward_event = 0
        self._increase_timer.stop()
        if self.guard is not None:
            self.guard.on_rp_update(self, "reset")
        self._notify_rate()

    def seed_rate(self, rate_bps: float) -> None:
        """Start the flow already throttled to ``rate_bps``.

        Emulates a flow that was rate-limited by earlier congestion
        (the §5.2 convergence scenario seeds one flow at 5 Gbps).  The
        increase machinery is armed, exactly as it would be after a
        past CNP.
        """
        if not 0 < rate_bps <= self.line_rate_bps:
            raise ValueError(
                f"seed rate must be in (0, {self.line_rate_bps}], got {rate_bps}"
            )
        self.rc_bps = rate_bps
        self.rt_bps = rate_bps
        self._alpha_stamp_ns = self.engine.now
        if self.active:
            self._increase_timer.reset()
        if self.guard is not None:
            self.guard.on_rp_update(self, "seed")
        self._notify_rate()

    # --- inputs from the NIC --------------------------------------------------

    def on_cnp(self) -> None:
        """A CNP arrived for this flow: cut rate, engage the increase machinery."""
        self.cnps_received += 1
        if self.active:
            self._apply_alpha_decay()
        else:
            # Fresh congestion episode (flow was at line rate, rate
            # limiter released): hardware re-initializes alpha.
            self._alpha = self.params.initial_alpha
            self._alpha_stamp_ns = self.engine.now
        # Equation (1), in the paper's order: the cut uses the current
        # alpha estimate, then the estimate itself is bumped.
        self.rt_bps = self.rc_bps
        new_rc = self.rc_bps * (1.0 - self._alpha / 2.0)
        self.rc_bps = max(new_rc, self.params.min_rate_bps)
        self._alpha = (1.0 - self.params.g) * self._alpha + self.params.g
        self._alpha_stamp_ns = self.engine.now
        # CutRate(); Reset(Timer, ByteCounter, T, BC, AlphaTimer)
        self.byte_counter_count = 0
        self.timer_count = 0
        self._bytes_toward_event = 0
        self._increase_timer.reset()
        if self.tracer is not None:
            self.tracer.emit(
                self.engine.now,
                "rp.cut",
                self.component,
                flow=self.flow_id,
                rc_bps=self.rc_bps,
                rt_bps=self.rt_bps,
                alpha=self._alpha,
            )
        if self.guard is not None:
            self.guard.on_rp_update(self, "cut")
        self._notify_rate()

    def on_bytes_sent(self, nbytes: int) -> None:
        """Account transmitted bytes toward the byte counter.

        Only meaningful while the RP is active — an unconstrained flow
        has nothing to increase.
        """
        if not self.active:
            return
        self._bytes_toward_event += nbytes
        b = self.params.byte_counter_bytes
        while self._bytes_toward_event >= b:
            self._bytes_toward_event -= b
            self.byte_counter_count += 1
            self._increase_rate()
            if not self.active:
                # recovered mid-burst; drop the remainder
                self._bytes_toward_event = 0
                break

    # --- internals ------------------------------------------------------------

    def _on_timer_event(self) -> None:
        self.timer_count += 1
        self._increase_rate()

    def _increase_rate(self) -> None:
        """One step of the Figure 7 increase state machine."""
        self.increase_events += 1
        phase = self.phase
        if phase is RpPhase.ADDITIVE_INCREASE:
            self.rt_bps = min(self.rt_bps + self.params.rai_bps, self.line_rate_bps)
        elif phase is RpPhase.HYPER_INCREASE:
            self.rt_bps = min(self.rt_bps + self.params.rhai_bps, self.line_rate_bps)
        self.rc_bps = (self.rt_bps + self.rc_bps) / 2.0
        if self.line_rate_bps - self.rc_bps <= _LINE_RATE_SNAP * self.line_rate_bps:
            self.rc_bps = self.line_rate_bps
        if self.tracer is not None:
            self.tracer.emit(
                self.engine.now,
                "rp.increase",
                self.component,
                flow=self.flow_id,
                phase=phase.value,
                rc_bps=self.rc_bps,
                rt_bps=self.rt_bps,
            )
        if not self.active:
            # Fully recovered: hardware releases the rate limiter; we
            # stop generating timer events until the next CNP.
            self._increase_timer.stop()
        if self.guard is not None:
            self.guard.on_rp_update(self, "increase")
        self._notify_rate()

    def _apply_alpha_decay(self) -> None:
        """Apply Equation (2) for every full alpha-timer period elapsed."""
        k = self.params.alpha_timer_ns
        elapsed = self.engine.now - self._alpha_stamp_ns
        periods = elapsed // k
        if periods <= 0:
            return
        self._alpha *= (1.0 - self.params.g) ** periods
        self._alpha_stamp_ns += periods * k

    def _notify_rate(self) -> None:
        if self.on_rate_change is not None:
            self.on_rate_change(self.rc_bps)
