"""§6.1 closing claim: K:1 incast keeps utilization high, queue bounded."""

from conftest import emit, run_once

from repro.experiments.common import format_table
from repro.experiments.microbench import INCAST_HEADERS, run_incast_sweep
from repro.runner import scale


def test_sec61_incast_sweep(benchmark):
    degrees = scale.pick((2, 4, 8, 16), (2, 4, 8, 12, 16, 19))
    results = run_once(benchmark, lambda: run_incast_sweep(degrees=degrees))
    emit(
        "sec61_incast_utilization",
        "Section 6.1: K:1 incast — total goodput and bottleneck queue "
        "(paper: > 39 Gbps, queue <= ~100 KB; see EXPERIMENTS.md on the "
        "queue tail at K >= 16)",
        format_table(INCAST_HEADERS, [r.row() for r in results]),
    )
    for result in results:
        # high utilization at every incast degree (paper: >39 of 40;
        # our pacing quantization costs ~2%)
        assert result.total_goodput_gbps > 36.5
        # PFC never engages: DCQCN is doing the control
        assert result.pause_frames == 0
    # queue grows with incast degree but stays far below the buffer
    assert results[-1].peak_queue_kb < 400
