"""Figure 11: fluid-model parameter sweeps for convergence."""

import pytest
from conftest import emit, run_once

from repro.experiments.sweeps import FIG11_PANELS, fig11_table, run_fig11_panel


@pytest.mark.parametrize("panel", sorted(FIG11_PANELS))
def test_fig11_sweep(benchmark, panel):
    result = run_once(benchmark, lambda: run_fig11_panel(panel))
    emit(
        f"fig11_{panel}",
        f"Figure 11 ({panel} sweep): steady rate gap of the 40G/5G flows",
        fig11_table(panel, result),
    )
    diffs = result.final_diff_gbps()
    if panel == "byte_counter":
        # slowing the byte counter (150 KB -> 10 MB) shrinks the gap
        assert diffs[-1] < diffs[0]
    elif panel == "timer":
        # the 55 us timer converges; the 1.5 ms strawman does not
        assert diffs[-1] < diffs[0] / 3
    elif panel == "pmax":
        # probabilistic marking beats cut-off (Pmax = 1)
        assert min(diffs[1:]) < diffs[0]
    else:  # kmax: widening the RED segment changes convergence
        assert len(diffs) == len(result.values)
