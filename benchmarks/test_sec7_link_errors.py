"""§7: sensitivity of RoCEv2's go-back-N to non-congestion losses."""

from conftest import emit, run_once

from repro.experiments.common import format_table
from repro.experiments.link_errors import LOSS_HEADERS, run_loss_sweep


def test_sec7_loss_sensitivity(benchmark):
    points = run_once(benchmark, run_loss_sweep)
    emit(
        "sec7_link_errors",
        "Section 7: goodput vs non-congestion loss rate (go-back-N vs "
        "an idealized selective-repeat bound)",
        format_table(LOSS_HEADERS, [p.row() for p in points]),
    )
    clean = points[0]
    assert clean.goodput_gbps > 39
    assert clean.retransmitted_packets == 0
    # go-back-N degrades super-linearly: at 1% loss the gap to the
    # selective-repeat bound is already large, and 5% is catastrophic
    by_rate = {p.loss_rate: p for p in points}
    assert by_rate[0.01].goodput_gbps < by_rate[0.01].ideal_selective_gbps - 3
    assert by_rate[0.05].goodput_gbps < 0.5 * by_rate[0.05].ideal_selective_gbps
    # losses strictly monotonically hurt
    goodputs = [p.goodput_gbps for p in points]
    assert goodputs == sorted(goodputs, reverse=True)
