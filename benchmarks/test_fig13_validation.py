"""Figure 13: validating the parameter choices in the packet simulator."""

from conftest import emit, run_once

from repro.experiments.common import format_table
from repro.experiments.fluid_validation import run_all_validations


def test_fig13_parameter_validation(benchmark):
    results = run_once(benchmark, run_all_validations)
    rows = [
        [
            name,
            f"{res.mean_rate_gbps[0]:.1f}",
            f"{res.mean_rate_gbps[1]:.1f}",
            f"{res.rate_gap_gbps:.2f}",
            f"{max(res.rate_std_gbps):.2f}",
        ]
        for name, res in results.items()
    ]
    emit(
        "fig13_validation",
        "Figure 13: two staggered flows (second seeded at 5 Gbps), "
        "steady-state mean rates / gap / oscillation",
        format_table(
            ["config", "flow1 Gbps", "flow2 Gbps", "gap Gbps", "std Gbps"], rows
        ),
    )
    strawman = results["strawman"]
    deployed = results["deployed"]
    red_only = results["red_marking_slow_timer"]
    timer_only = results["fast_timer_cutoff"]
    # (a) strawman: persistent, near-total unfairness
    assert strawman.rate_gap_gbps > 20
    # (d) deployed (55us timer + RED): near-perfect fairness
    assert deployed.rate_gap_gbps < 5
    # (b)/(c): each fix alone improves on the strawman
    assert timer_only.rate_gap_gbps < strawman.rate_gap_gbps
    assert red_only.rate_gap_gbps < strawman.rate_gap_gbps
