"""Figure 3: PFC's parking-lot unfairness (no congestion control)."""

from conftest import emit, run_once

from repro.experiments.pfc_pathologies import run_unfairness


def test_fig03_pfc_unfairness(benchmark):
    result = run_once(benchmark, lambda: run_unfairness("none"))
    emit(
        "fig03_unfairness",
        "Figure 3(b): per-host throughput, PFC only (min/median/max over "
        f"{result.repetitions} ECMP draws, {result.duration_ms:.0f} ms each)",
        result.table() + f"\nPAUSE frames per run: {result.pause_frames}",
    )
    h4_min, h4_median, h4_max = result.stats_gbps("H4")
    other_medians = [result.stats_gbps(h)[1] for h in ("H1", "H2", "H3")]
    # the paper's claims: H4 (alone on its port) beats the others and
    # can reach ~20 Gbps when ECMP collapses H1-H3 onto one uplink
    assert h4_median > max(other_medians)
    assert h4_max > 15.0
    # PFC was actually doing the braking
    assert all(count > 0 for count in result.pause_frames)
