"""Figure 17: DCQCN carries 16x the user load at equal performance."""

from conftest import emit, run_once

from repro.analysis.stats import percentile
from repro.experiments.benchmark_traffic import run_fig17
from repro.experiments.common import format_table


def test_fig17_sixteen_x_user_traffic(benchmark):
    results = run_once(benchmark, run_fig17)
    low = results["none_5pairs"]
    high = results["dcqcn_80pairs"]
    rows = []
    for name, res in results.items():
        rows.append(
            [
                name,
                f"{res.user_median_gbps():.2f}",
                f"{res.user_p10_gbps():.2f}",
                f"{percentile(res.incast_bps, 50) / 1e9:.2f}",
                f"{percentile(res.incast_bps, 10) / 1e9:.2f}",
            ]
        )
    emit(
        "fig17_user_load",
        "Figure 17: 5 pairs without DCQCN vs 80 pairs with DCQCN "
        "(10:1 incast)",
        format_table(
            ["config", "user med", "user p10", "incast med", "incast p10"], rows
        ),
    )
    # "the performance of user traffic with 5 communicating pairs when
    # no DCQCN is used matches the performance ... with 80 pairs, with
    # DCQCN.  In other words, DCQCN handles 16x more user traffic."
    # 16x the pairs at >= comparable per-pair goodput, median and tail:
    assert high.user_median_gbps() >= 0.8 * low.user_median_gbps()
    assert high.user_p10_gbps() >= low.user_p10_gbps()
    # and the incast (disk rebuild) tail is no worse despite 16x load
    assert percentile(high.incast_bps, 10) >= percentile(low.incast_bps, 10)
