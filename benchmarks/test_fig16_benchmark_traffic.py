"""Figure 16: benchmark traffic vs incast degree, with/without DCQCN."""

from conftest import emit, run_once

from repro.experiments.benchmark_traffic import (
    RESULT_HEADERS,
    fig16_table,
    run_fig16,
)
from repro.runner import scale


def test_fig16_user_and_incast_throughput(benchmark):
    degrees = scale.pick((2, 6, 10), (2, 4, 6, 8, 10))
    results = run_once(benchmark, lambda: run_fig16(degrees=degrees))
    emit(
        "fig16_benchmark_traffic",
        "Figure 16: median / 10th-pct goodput of user pairs and incast "
        "senders vs incast degree",
        fig16_table(results),
    )
    none_runs = results["none"]
    dcqcn_runs = results["dcqcn"]
    hi = max(degrees)
    lo = min(degrees)

    # (a)/(b): without DCQCN user throughput collapses as incast deepens;
    # with DCQCN it barely moves
    assert none_runs[hi].user_p10_gbps() < none_runs[lo].user_p10_gbps()
    assert dcqcn_runs[hi].user_median_gbps() > none_runs[hi].user_median_gbps()
    assert dcqcn_runs[hi].user_p10_gbps() > 4 * max(none_runs[hi].user_p10_gbps(), 0.01)

    # (d): DCQCN's incast tail sits near the ideal fair share 40/degree
    ideal = 40.0 / hi
    assert dcqcn_runs[hi].incast_p10_gbps() > 0.6 * ideal
    assert none_runs[hi].incast_p10_gbps() < dcqcn_runs[hi].incast_p10_gbps()

    # with DCQCN, median and tail are nearly identical (fair shares)
    spread = dcqcn_runs[hi].incast_median_gbps() - dcqcn_runs[hi].incast_p10_gbps()
    assert spread < 0.5 * ideal
