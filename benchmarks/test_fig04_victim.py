"""Figure 4: the victim-flow problem (cascading PAUSEs)."""

from conftest import emit, run_once

from repro.experiments.pfc_pathologies import run_victim_flow


def test_fig04_victim_flow(benchmark):
    result = run_once(benchmark, lambda: run_victim_flow("none"))
    emit(
        "fig04_victim",
        "Figure 4(b): victim median throughput vs senders under T3 "
        f"(PFC only, {result.repetitions} ECMP draws)",
        result.table(),
    )
    # the victim's path shares no congested link with the incast, yet:
    # (1) it is already degraded at 0 extra senders (~10 not ~20 Gbps),
    baseline = result.median_gbps(0)
    assert baseline < 15.0
    # (2) adding senders under T3 makes it strictly worse
    assert result.median_gbps(2) < baseline
