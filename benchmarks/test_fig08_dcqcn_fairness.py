"""Figure 8: DCQCN fixes the Figure 3 unfairness."""

from conftest import emit, run_once

from repro.analysis.stats import jain_fairness, percentile
from repro.experiments.pfc_pathologies import run_unfairness


def test_fig08_dcqcn_restores_fairness(benchmark):
    result = run_once(benchmark, lambda: run_unfairness("dcqcn"))
    emit(
        "fig08_dcqcn_fairness",
        "Figure 8: per-host throughput with DCQCN "
        f"({result.repetitions} ECMP draws)",
        result.table() + f"\nPAUSE frames per run: {result.pause_frames}",
    )
    medians = [
        percentile(result.throughputs_bps[h], 50) / 1e9
        for h in ("H1", "H2", "H3", "H4")
    ]
    # "All four flows get equal share of the bottleneck bandwidth, and
    # there is little variance."
    assert jain_fairness(medians) > 0.97
    assert sum(medians) > 35.0  # near-full bottleneck utilization
    # and PFC is out of the picture entirely
    assert all(count == 0 for count in result.pause_frames)
