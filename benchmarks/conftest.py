"""Shared benchmark plumbing.

Every benchmark regenerates one of the paper's tables or figures:
it runs the experiment exactly once under pytest-benchmark (the
wall-clock number it reports is the cost of reproducing the figure),
prints the figure's rows, writes them under ``results/`` and asserts
the paper's qualitative claim — who wins and by roughly what factor.

Scale: durations are simulated-milliseconds stand-ins for the paper's
minutes-long testbed runs (see DESIGN.md).  Set ``REPRO_SCALE=full``
for longer runs and more repetitions.
"""

from __future__ import annotations

from repro.experiments import common


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def emit(name: str, title: str, body: str) -> None:
    """Print a figure's regenerated rows and persist them."""
    text = f"=== {title} ===\n{body}"
    print("\n" + text)
    common.write_result(name, text)
