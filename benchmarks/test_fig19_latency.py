"""Figure 19: egress queue distribution, DCQCN vs DCTCP."""

from conftest import emit, run_once

from repro.experiments.common import format_table
from repro.experiments.latency import QUEUE_HEADERS, run_fig19


def test_fig19_queue_cdf(benchmark):
    results = run_once(benchmark, run_fig19)
    emit(
        "fig19_latency",
        "Figure 19: egress queue length during 2:1 incast "
        "(paper: q90 = 76.6 KB DCQCN vs 162.9 KB DCTCP)",
        format_table(QUEUE_HEADERS, [r.row() for r in results]),
    )
    dcqcn, dctcp = results
    assert dcqcn.protocol == "dcqcn"
    # the headline: DCQCN's hardware pacing admits a shallow Kmin and
    # keeps the queue roughly 2-3x shorter at the 90th percentile
    assert dcqcn.percentile_kb(90) < 0.6 * dctcp.percentile_kb(90)
    # DCTCP rides at its 160 KB marking threshold
    assert 120 < dctcp.percentile_kb(50) < 200
    # neither sacrifices throughput for it
    assert dcqcn.total_goodput_gbps > 36
    assert dctcp.total_goodput_gbps > 36
