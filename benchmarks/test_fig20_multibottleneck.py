"""Figure 20: multi-bottleneck flows under cut-off vs RED-like marking."""

from conftest import emit, run_once

from repro.experiments.common import format_table
from repro.experiments.multibottleneck import PARKING_HEADERS, run_fig20


def test_fig20_marking_scheme_comparison(benchmark):
    results = run_once(benchmark, run_fig20)
    emit(
        "fig20_multibottleneck",
        "Figure 20(b): parking-lot flows (max-min share = 20 Gbps each); "
        "f2 crosses both bottlenecks",
        format_table(PARKING_HEADERS, [r.row() for r in results]),
    )
    cutoff, red = results
    # with cut-off marking the two-bottleneck flow is starved well
    # below its max-min share...
    assert cutoff.two_bottleneck_share < 0.7
    # ...RED-like marking mitigates (the paper: "mitigated but not
    # completely solved")
    assert red.two_bottleneck_share > cutoff.two_bottleneck_share + 0.1
    # single-bottleneck flows stay healthy in both schemes
    for result in results:
        assert result.flow_gbps["f1"] > 10
        assert result.flow_gbps["f3"] > 10
