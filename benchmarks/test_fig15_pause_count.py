"""Figure 15: PAUSE frames reaching the spines, with and without DCQCN."""

from conftest import emit, run_once

from repro.experiments.benchmark_traffic import run_benchmark_traffic
from repro.experiments.common import format_table


def test_fig15_spine_pause_count(benchmark):
    def measure():
        return {
            variant: run_benchmark_traffic(variant, incast_degree=10)
            for variant in ("none", "dcqcn")
        }

    results = run_once(benchmark, measure)
    rows = [
        [variant, res.total_spine_pauses(), sum(res.dropped_packets)]
        for variant, res in results.items()
    ]
    emit(
        "fig15_pause_count",
        "Figure 15: PAUSE frames received at the spines "
        "(10:1 incast + 20 user pairs)",
        format_table(["variant", "spine PAUSE frames", "drops"], rows),
    )
    without = results["none"].total_spine_pauses()
    with_dcqcn = results["dcqcn"].total_spine_pauses()
    # the paper reports millions vs ~300 over two minutes; at our
    # scaled duration the ratio is the claim: orders of magnitude
    assert without > 100
    assert with_dcqcn < without / 50
