"""Figure 1: TCP vs RDMA throughput, CPU utilization and latency."""

from conftest import emit, run_once

from repro.experiments.common import format_table
from repro.hoststack.model import RdmaStackModel, TcpStackModel, compare_stacks


def test_fig01_throughput_and_cpu(benchmark):
    rows_by_size = run_once(benchmark, compare_stacks)
    rows = [
        [
            f"{size // 1000}KB" if size < 10**6 else f"{size // 10**6}MB",
            f"{row.tcp_throughput_gbps:.1f}",
            f"{row.tcp_cpu_pct:.0f}",
            f"{row.rdma_throughput_gbps:.1f}",
            f"{row.rdma_client_cpu_pct:.2f}",
            f"{row.rdma_server_cpu_pct:.2f}",
        ]
        for size, row in rows_by_size.items()
    ]
    emit(
        "fig01_throughput_cpu",
        "Figure 1(a)/(b): throughput (Gbps) and CPU (%) vs message size",
        format_table(
            ["size", "TCP Gbps", "TCP CPU%", "RDMA Gbps", "RDMA cli%", "RDMA srv%"],
            rows,
        ),
    )
    values = list(rows_by_size.values())
    # paper claims: TCP CPU-bound at small sizes, >20% CPU at line rate;
    # RDMA saturates everywhere with <3% client CPU and ~0 server CPU
    assert values[0].tcp_throughput_gbps < 40
    assert all(v.tcp_cpu_pct > 20 for v in values)
    assert all(v.rdma_throughput_gbps == 40 for v in values)
    assert all(v.rdma_client_cpu_pct < 3 for v in values)
    assert all(v.rdma_server_cpu_pct == 0 for v in values)


def test_fig01_latency(benchmark):
    tcp = TcpStackModel()
    rdma = RdmaStackModel()

    def measure():
        return (
            tcp.latency_us(2048),
            rdma.latency_us(2048, "write"),
            rdma.latency_us(2048, "send"),
        )

    tcp_us, write_us, send_us = run_once(benchmark, measure)
    emit(
        "fig01_latency",
        "Figure 1(c): 2KB transfer latency (us)",
        format_table(
            ["stack", "latency us", "paper us"],
            [
                ["TCP", f"{tcp_us:.2f}", "25.4"],
                ["RDMA read/write", f"{write_us:.2f}", "1.7"],
                ["RDMA send", f"{send_us:.2f}", "2.8"],
            ],
        ),
    )
    assert tcp_us > 10 * write_us  # an order of magnitude apart
    assert write_us < send_us < tcp_us
