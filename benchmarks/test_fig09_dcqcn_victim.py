"""Figure 9: DCQCN rescues the Figure 4 victim flow."""

from conftest import emit, run_once

from repro.experiments.pfc_pathologies import run_victim_flow


def test_fig09_dcqcn_victim(benchmark):
    result = run_once(benchmark, lambda: run_victim_flow("dcqcn"))
    emit(
        "fig09_dcqcn_victim",
        "Figure 9: victim median throughput vs senders under T3 "
        f"(DCQCN, {result.repetitions} ECMP draws)",
        result.table(),
    )
    # "With DCQCN, the throughput of the VS-VR flow does not change as
    # we add senders under T3" — and it stays far above the collapsed
    # PFC-only numbers.  The victim's exact level depends on which
    # uplink ECMP deals it (binomial split of the four incast flows).
    medians = [result.median_gbps(n) for n in sorted(result.victim_bps)]
    assert min(medians) > 8.0
    # adding T3 senders must NOT degrade the victim (it only relieves
    # the victim's uplink, since the incast flows slow down)
    assert medians[-1] >= medians[0] - 2.0
