"""Ablations of the design choices DESIGN.md calls out.

* DCQCN vs QCN vs PFC-only on a single L2 domain (§2.3: QCN's control
  law works — its problem is L3 deployability).
* Pmax sensitivity at 16:1 incast: Table 14's OCR-ambiguous Pmax (1%)
  pins the deep-incast queue near Kmax, while Pmax = 10% recovers the
  §6.1 "queue never exceeds ~100 KB" claim.
* Timer jitter: without firmware timer skew, N synchronized flows cut
  and recover in phase and queue oscillation is overstated.
"""

from dataclasses import replace

import numpy as np
from conftest import emit, run_once

from repro import units
from repro.analysis.stats import percentile
from repro.core.params import DCQCNParams
from repro.experiments.common import format_table
from repro.experiments.qcn_ablation import ABLATION_HEADERS, run_ablation
from repro.sim.monitor import QueueSampler
from repro.sim.switch import SwitchConfig
from repro.sim.topology import single_switch


def test_ablation_qcn_vs_dcqcn(benchmark):
    results = run_once(benchmark, run_ablation)
    emit(
        "ablation_qcn",
        "Ablation: 4:1 incast on one L2 domain — PFC only vs QCN vs DCQCN",
        format_table(ABLATION_HEADERS, [r.row() for r in results.values()]),
    )
    # all three keep the single switch lossless and utilized
    for result in results.values():
        assert result.total_gbps > 30
    # DCQCN converges at least as fairly as QCN on its home turf
    assert results["dcqcn"].fairness > 0.9
    assert results["qcn"].fairness > 0.6


def _queue_tail_for_pmax(pmax: float, degree: int = 16) -> float:
    params = replace(DCQCNParams.deployed(), pmax=pmax)
    net, switch, hosts = single_switch(
        degree + 1,
        switch_config=SwitchConfig(marking=params),
        seed=71,
        dcqcn_params=params,
    )
    receiver = hosts[-1]
    for sender in hosts[:degree]:
        flow = net.add_flow(sender, receiver, cc="dcqcn")
        flow.set_greedy()
    net.run_for(units.ms(25))
    sampler = QueueSampler(
        net.engine, switch, switch.port_to(receiver.nic).index,
        interval_ns=units.us(10),
    )
    net.run_for(units.ms(15))
    return percentile(sampler.samples_bytes, 90) / 1e3


def test_ablation_pmax_queue_tail(benchmark):
    def measure():
        return {pmax: _queue_tail_for_pmax(pmax) for pmax in (0.01, 0.10)}

    tails = run_once(benchmark, measure)
    emit(
        "ablation_pmax",
        "Ablation: 16:1 incast queue tail (q90, KB) vs Pmax — "
        "Pmax = 10% recovers the paper's <=100 KB queue claim",
        format_table(
            ["Pmax", "q90 KB"],
            [[f"{p:.0%}", f"{q:.1f}"] for p, q in tails.items()],
        ),
    )
    assert tails[0.10] < tails[0.01]
    assert tails[0.10] < 120


def test_ablation_timer_jitter(benchmark):
    def tail_with_jitter(jitter_ns: int) -> float:
        params = replace(
            DCQCNParams.deployed(), rate_increase_timer_jitter_ns=jitter_ns
        )
        net, switch, hosts = single_switch(
            9, switch_config=SwitchConfig(marking=params), seed=73,
            dcqcn_params=params,
        )
        receiver = hosts[-1]
        for sender in hosts[:8]:
            flow = net.add_flow(sender, receiver, cc="dcqcn")
            flow.set_greedy()
        net.run_for(units.ms(20))
        sampler = QueueSampler(
            net.engine, switch, switch.port_to(receiver.nic).index,
            interval_ns=units.us(10),
        )
        net.run_for(units.ms(15))
        return float(np.std(sampler.samples_bytes)) / 1e3

    def measure():
        return {j: tail_with_jitter(j) for j in (0, units.us(4))}

    stds = run_once(benchmark, measure)
    emit(
        "ablation_timer_jitter",
        "Ablation: 8:1 incast queue std-dev (KB) vs RP timer jitter",
        format_table(
            ["jitter", "queue std KB"],
            [[f"{j / 1e3:.0f} us", f"{s:.1f}"] for j, s in stds.items()],
        ),
    )
    # jitter must not destabilize the queue (and typically calms it)
    assert stds[units.us(4)] < stds[0] * 1.5
