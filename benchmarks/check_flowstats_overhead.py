#!/usr/bin/env python
"""CI gate: FlowStats bookkeeping must stay near-free when tracing is off.

Times a named scenario in fresh subprocesses with ``REPRO_FLOWSTATS``
off (the pre-observability baseline) and on (the default), best-of-N
each, and fails when the enabled run's events/sec drops more than the
threshold below the disabled run.  Subprocesses are required because
the knob is read once at ``repro.sim.host`` import; rounds alternate
between the two modes so thermal drift hits both equally.

Usage (CI runs this after the bench smoke)::

    PYTHONPATH=src python benchmarks/check_flowstats_overhead.py \
        --scenario smoke --rounds 3 --threshold 0.05
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys

CHILD = """\
import json, time
from repro.cli import _build_named_scenario
from repro.runner import run_scenario_inline
scenario = _build_named_scenario({scenario!r})
if scenario is None:
    raise SystemExit(2)
start = time.perf_counter()
_, net = run_scenario_inline(scenario, {seed})
wall = time.perf_counter() - start
print(json.dumps({{"events": net.engine.events_processed, "wall_s": wall}}))
"""


def time_once(scenario: str, seed: int, flowstats: str) -> float:
    """Events/sec of one fresh-process run with the knob set."""
    env = dict(os.environ, REPRO_FLOWSTATS=flowstats)
    out = subprocess.run(
        [sys.executable, "-c", CHILD.format(scenario=scenario, seed=seed)],
        env=env,
        capture_output=True,
        text=True,
    )
    if out.returncode != 0:
        sys.stderr.write(out.stderr)
        raise SystemExit(f"timing child failed (rc={out.returncode})")
    sample = json.loads(out.stdout.strip())
    return sample["events"] / sample["wall_s"] if sample["wall_s"] > 0 else 0.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scenario", default="smoke", help="named scenario to time")
    parser.add_argument("--rounds", type=int, default=3, help="best-of-N rounds")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.05,
        help="max allowed fractional events/sec regression (0.05 = 5%%)",
    )
    args = parser.parse_args(argv)

    best = {"off": 0.0, "on": 0.0}
    for round_no in range(args.rounds):
        for mode in ("off", "on"):
            eps = time_once(args.scenario, args.seed, mode)
            best[mode] = max(best[mode], eps)
            print(
                f"round {round_no + 1}/{args.rounds} "
                f"REPRO_FLOWSTATS={mode}: {eps:,.0f} events/s"
            )
    ratio = best["on"] / best["off"] if best["off"] > 0 else 0.0
    floor = 1.0 - args.threshold
    verdict = "ok" if ratio >= floor else "FAIL"
    print(
        f"best off {best['off']:,.0f} ev/s, best on {best['on']:,.0f} ev/s, "
        f"ratio {ratio:.3f} (floor {floor:.3f}): {verdict}"
    )
    return 0 if ratio >= floor else 1


if __name__ == "__main__":
    sys.exit(main())
