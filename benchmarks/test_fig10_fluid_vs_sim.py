"""Figure 10: the fluid model tracks the (simulated) implementation."""

from conftest import emit, run_once

from repro.experiments.fluid_validation import run_fluid_vs_sim


def test_fig10_fluid_matches_sim(benchmark):
    result = run_once(benchmark, run_fluid_vs_sim)
    emit(
        "fig10_fluid_vs_sim",
        "Figure 10: second sender's rate — packet sim vs fluid model\n"
        f"(correlation {result.correlation():.3f}, "
        f"normalized RMSE {result.normalized_rmse():.3f})",
        result.table(points=14),
    )
    # both trajectories ramp from the post-cut rate toward the 20 Gbps
    # fair share on the same (additive-increase) timescale
    assert result.correlation() > 0.6
    assert result.normalized_rmse() < 0.4
    assert result.sim_rate_bps[-1] > 15e9
    assert result.fluid_rate_bps[-1] > 15e9
