#!/usr/bin/env python
"""CI gate: shard checkpoint journaling must stay under 10% of wall.

Times a sharded fabric scenario in fresh subprocesses with the barrier
journal off (``REPRO_SHARD_CHECKPOINT=off``) and on, best-of-N each,
and fails when the journalled run is more than the threshold slower.
Fresh subprocesses keep the comparison honest (no warm caches or
lingering worker pools), and rounds alternate between the two modes so
thermal drift hits both equally.  Each child reports the parent's
measured journaling time too, so a failure distinguishes "the journal
is expensive" from "the host was noisy".

Usage (CI runs this in the shard-resilience smoke)::

    PYTHONPATH=src python benchmarks/check_shard_checkpoint_overhead.py \
        --scenario fabric-bench --shards 2 --rounds 3 --threshold 0.10
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile

CHILD = """\
import json, time
from repro.cli import _build_named_scenario
from repro.runner import run_scenario_inline
from repro.shard import runner as shard_runner
scenario = _build_named_scenario({scenario!r})
if scenario is None:
    raise SystemExit(2)
start = time.perf_counter()
run_scenario_inline(scenario, {seed})
wall = time.perf_counter() - start
stats = shard_runner.LAST_STATS
if stats is None:
    raise SystemExit("scenario did not run sharded")
print(json.dumps({{"wall_s": wall, "checkpoint_s": stats["checkpoint_s"]}}))
"""


def time_once(
    scenario: str, seed: int, shards: int, checkpoint: str, results_dir: str
) -> dict:
    """Wall seconds of one fresh-process sharded run with the knob set."""
    env = dict(
        os.environ,
        REPRO_SHARD_CHECKPOINT=checkpoint,
        REPRO_SHARDS=str(shards),
        REPRO_RESULTS_DIR=results_dir,
    )
    out = subprocess.run(
        [sys.executable, "-c", CHILD.format(scenario=scenario, seed=seed)],
        env=env,
        capture_output=True,
        text=True,
    )
    if out.returncode != 0:
        sys.stderr.write(out.stderr)
        raise SystemExit(f"timing child failed (rc={out.returncode})")
    return json.loads(out.stdout.strip())


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scenario", default="fabric-bench", help="named scenario to time"
    )
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--rounds", type=int, default=3, help="best-of-N rounds")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="max allowed fractional wall-clock overhead (0.10 = 10%%)",
    )
    args = parser.parse_args(argv)

    best = {"off": float("inf"), "on": float("inf")}
    journal_s = 0.0
    with tempfile.TemporaryDirectory(prefix="shard-ckpt-bench-") as results:
        for round_no in range(args.rounds):
            for mode in ("off", "on"):
                sample = time_once(
                    args.scenario, args.seed, args.shards, mode, results
                )
                best[mode] = min(best[mode], sample["wall_s"])
                if mode == "on":
                    journal_s = max(journal_s, sample["checkpoint_s"])
                print(
                    f"round {round_no + 1}/{args.rounds} "
                    f"REPRO_SHARD_CHECKPOINT={mode}: "
                    f"{sample['wall_s']:.2f}s wall, "
                    f"{sample['checkpoint_s']:.3f}s journaling"
                )
    overhead = (
        (best["on"] - best["off"]) / best["off"] if best["off"] > 0 else 0.0
    )
    verdict = "ok" if overhead <= args.threshold else "FAIL"
    print(
        f"best off {best['off']:.2f}s, best on {best['on']:.2f}s, "
        f"overhead {overhead:+.1%} (ceiling {args.threshold:.0%}), "
        f"journaling {journal_s:.3f}s: {verdict}"
    )
    return 0 if overhead <= args.threshold else 1


if __name__ == "__main__":
    sys.exit(main())
