"""§4: buffer thresholds — the derivation and its end-to-end effect."""

import pytest
from conftest import emit, run_once

from repro.buffers.thresholds import plan_thresholds
from repro.experiments.buffer_settings import (
    run_ecn_before_pfc_check,
    section4_table,
)


def test_sec4_threshold_table(benchmark):
    plan = run_once(benchmark, plan_thresholds)
    emit(
        "sec4_thresholds",
        "Section 4: switch buffer thresholds (Trident II, 12 MB, 32 "
        "ports, 8 priorities)",
        section4_table(plan),
    )
    # the paper's numbers
    assert plan.static_pfc_bound_bytes == pytest.approx(24_475, rel=1e-3)
    assert plan.ecn_bound_static_bytes == pytest.approx(764.8, rel=1e-3)
    assert plan.ecn_bound_dynamic_bytes == pytest.approx(21_755, rel=1e-3)
    assert plan.ecn_before_pfc
    # the static-threshold t_ECN is below one MTU: infeasible
    assert plan.ecn_bound_static_bytes < plan.profile.mtu_bytes


def test_sec4_ecn_fires_before_pfc(benchmark):
    def measure():
        return (
            run_ecn_before_pfc_check(misconfigured=False),
            run_ecn_before_pfc_check(misconfigured=True),
        )

    good, bad = run_once(benchmark, measure)
    emit(
        "sec4_ecn_before_pfc",
        "Section 4 in action: which mechanism fires under 8:1 incast",
        "\n".join(
            f"{r.configuration}: marks={r.marked_packets} "
            f"steady PAUSE={r.pause_frames} startup PAUSE={r.startup_pause_frames} "
            f"drops={r.dropped_packets}"
            for r in (good, bad)
        ),
    )
    assert good.ecn_first
    assert not bad.ecn_first
    assert bad.startup_pause_frames + bad.pause_frames > 0
    # losslessness holds either way — PFC is the backstop
    assert good.dropped_packets == 0
    assert bad.dropped_packets == 0
