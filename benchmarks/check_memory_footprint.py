#!/usr/bin/env python
"""CI gate: hot simulation objects stay slotted and fabrics stay lean.

Two checks, both cheap enough for every CI run:

1. **Slots** — the per-packet / per-port / per-flow classes must not
   grow an instance ``__dict__``.  A stray class attribute or a
   removed ``__slots__`` declaration silently re-adds ~100 bytes per
   object, which at fabric scale (thousands of flows, tens of
   thousands of ports) is the difference between a 1024-host scenario
   fitting in the executor's memory budget or not.

2. **Footprint** — building a k=8 fat-tree (128 hosts, 80 switches,
   routes installed) must stay under a per-host tracemalloc budget.
   The budget is generous (2x the measured value at introduction) so
   it only trips on regressions of kind, not noise: an accidental
   per-host copy of a config object, routing tables going quadratic,
   and so on.

Usage (CI runs this in the fabric-smoke job)::

    PYTHONPATH=src python benchmarks/check_memory_footprint.py
"""

from __future__ import annotations

import argparse
import sys
import tracemalloc

#: (module, class) pairs that must not carry an instance __dict__
SLOTTED = (
    ("repro.sim.device", "Device"),
    ("repro.sim.host", "Flow"),
    ("repro.sim.host", "Host"),
    ("repro.sim.host", "Message"),
    ("repro.sim.link", "Port"),
    ("repro.sim.nic", "HostNic"),
    ("repro.sim.nic", "_RxState"),
    ("repro.sim.packet", "Packet"),
    ("repro.sim.switch", "Switch"),
)

#: tracemalloc bytes per host allowed for a freshly built k=8 fat-tree
#: (measured ~45 KB/host when the fabric subsystem landed; 2x headroom)
PER_HOST_BUDGET_BYTES = 90_000


def check_slots() -> list:
    """Classes from SLOTTED that (re)grew an instance ``__dict__``."""
    import importlib

    problems = []
    for module_name, class_name in SLOTTED:
        cls = getattr(importlib.import_module(module_name), class_name)
        if "__dict__" in dir(cls) and not hasattr(cls, "__slots__"):
            problems.append(f"{module_name}.{class_name}: no __slots__")
            continue
        # a slotted class still gets a __dict__ if any base lacks slots
        offenders = [
            base.__name__
            for base in cls.__mro__[:-1]
            if "__slots__" not in vars(base)
        ]
        if offenders:
            problems.append(
                f"{module_name}.{class_name}: instances carry __dict__ "
                f"(unslotted bases: {', '.join(offenders)})"
            )
    return problems


def measure_fabric_bytes(k: int) -> tuple:
    """(total_bytes, host_count) for building a k-ary fat-tree."""
    from repro.fabric import build_fabric

    tracemalloc.start()
    before, _ = tracemalloc.get_traced_memory()
    fabric = build_fabric(kind="fat_tree", k=k)
    after, _ = tracemalloc.get_traced_memory()
    host_count = len(fabric.all_hosts())
    tracemalloc.stop()
    return after - before, host_count


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--k", type=int, default=8, help="fat-tree arity to build (default: 8)"
    )
    parser.add_argument(
        "--budget-bytes",
        type=int,
        default=PER_HOST_BUDGET_BYTES,
        help="per-host tracemalloc budget (default: %(default)s)",
    )
    args = parser.parse_args(argv)

    problems = check_slots()
    for problem in problems:
        print(f"FAIL {problem}")
    if not problems:
        print(f"slots ok: {len(SLOTTED)} hot classes carry no __dict__")

    total, hosts = measure_fabric_bytes(args.k)
    per_host = total / hosts
    print(
        f"k={args.k} fat-tree: {total / 1e6:.1f} MB traced for {hosts} hosts "
        f"({per_host / 1e3:.1f} KB/host, budget "
        f"{args.budget_bytes / 1e3:.0f} KB/host)"
    )
    if per_host > args.budget_bytes:
        print(
            f"FAIL per-host footprint {per_host:.0f} B exceeds budget "
            f"{args.budget_bytes} B"
        )
        problems.append("footprint")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
