"""Table 14: the deployed DCQCN parameter values."""

from conftest import emit, run_once

from repro import units
from repro.core.params import DCQCNParams
from repro.experiments.common import format_table


def test_tab14_deployed_parameters(benchmark):
    params = run_once(benchmark, DCQCNParams.deployed)
    rows = [
        ["rate-increase timer", f"{params.rate_increase_timer_ns / 1e3:.0f} us", "55 us"],
        ["byte counter", f"{params.byte_counter_bytes / 1e6:.0f} MB", "10 MB"],
        ["Kmax", f"{params.kmax_bytes / 1e3:.0f} KB", "200 KB"],
        ["Kmin", f"{params.kmin_bytes / 1e3:.0f} KB", "5 KB"],
        ["Pmax", f"{params.pmax * 100:.0f} %", "1 %"],
        ["g", f"1/{round(1 / params.g)}", "1/256"],
        ["CNP interval N", f"{params.cnp_interval_ns / 1e3:.0f} us", "50 us"],
        ["alpha timer K", f"{params.alpha_timer_ns / 1e3:.0f} us", "55 us"],
        ["R_AI", f"{params.rai_bps / 1e6:.0f} Mbps", "40 Mbps"],
        ["F", str(params.fast_recovery_threshold), "5"],
    ]
    emit(
        "tab14_parameters",
        "Table 14 (+Table 2): deployed DCQCN parameters",
        format_table(["parameter", "value", "paper"], rows),
    )
    assert params.rate_increase_timer_ns == units.us(55)
    assert params.byte_counter_bytes == units.mb(10)
    assert params.kmax_bytes == units.kb(200)
    assert params.kmin_bytes == units.kb(5)
    assert params.pmax == 0.01
    assert params.g == 1 / 256
