"""Figure 18: DCQCN needs PFC, and PFC needs correct thresholds."""

from conftest import emit, run_once

from repro.experiments.benchmark_traffic import run_fig18
from repro.experiments.common import format_table


def test_fig18_four_configurations(benchmark):
    results = run_once(benchmark, run_fig18)
    rows = [
        [
            variant,
            f"{res.user_p10_gbps():.2f}",
            f"{res.incast_p10_gbps():.2f}",
            str(sum(res.dropped_packets)),
            str(res.total_spine_pauses()),
        ]
        for variant, res in results.items()
    ]
    emit(
        "fig18_pfc_need",
        "Figure 18: 10th-percentile goodput for the four fabric "
        "configurations (8:1 incast + user traffic)",
        format_table(
            ["variant", "user p10 Gbps", "incast p10 Gbps", "drops", "spine PAUSE"],
            rows,
        ),
    )
    none = results["none"]
    dcqcn = results["dcqcn"]
    no_pfc = results["dcqcn_no_pfc"]
    misconf = results["dcqcn_misconfigured"]

    # DCQCN with correct thresholds wins for the user traffic the
    # figure is about (the incast-vs-none comparison is Figure 16's,
    # measured there without the fresh-QP stress)
    assert dcqcn.user_p10_gbps() > none.user_p10_gbps()
    assert dcqcn.user_median_gbps() > none.user_median_gbps()

    # without PFC: "packet losses are common, and this leads to poor
    # performance" — losses occur only in this arm, and both tails sit
    # below properly configured DCQCN.  (Our go-back-N retries forever,
    # so the degradation is partial rather than the paper's total
    # collapse; see EXPERIMENTS.md note 7.)
    assert sum(no_pfc.dropped_packets) > 0
    assert sum(dcqcn.dropped_packets) == 0
    assert sum(none.dropped_packets) == 0
    assert no_pfc.user_p10_gbps() <= dcqcn.user_p10_gbps()
    assert no_pfc.incast_p10_gbps() <= dcqcn.incast_p10_gbps()

    # misconfigured thresholds: PFC fires before ECN (PAUSE traffic is
    # back) and performance sits below properly configured DCQCN
    assert misconf.incast_p10_gbps() <= dcqcn.incast_p10_gbps()
    assert misconf.total_spine_pauses() > dcqcn.total_spine_pauses()
