"""Figure 12: choosing g by queue length and stability."""

from conftest import emit, run_once

from repro.experiments.sweeps import run_fig12


def test_fig12_g_study(benchmark):
    result = run_once(benchmark, run_fig12)
    emit(
        "fig12_g_sweep",
        "Figure 12: bottleneck queue vs g for 2:1 and 16:1 incast "
        "(fluid model)",
        result.table(),
    )
    for degree, res in result.per_degree.items():
        stds = res.queue_stddev_kb()
        means = res.steady_queue_kb()
        # smaller g (1/256, second entry) gives the lower-variation
        # queue — the paper's basis for deploying g = 1/256
        assert stds[1] <= stds[0] * 1.15
        assert means[1] <= means[0] * 1.15
    # deeper incast needs more queue
    assert (
        result.per_degree[16].steady_queue_kb().mean()
        > result.per_degree[2].steady_queue_kb().mean()
    )
